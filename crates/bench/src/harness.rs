//! A tiny wall-clock micro-benchmark harness (replaces Criterion so the
//! workspace builds offline).
//!
//! Each benchmark runs a calibration pass to pick an iteration count that
//! fills ~`target_ms` of wall time, then reports mean ns/iteration over a
//! few measurement batches. Results print in a stable aligned format and
//! can optionally be captured as a [`sipt_telemetry::json::Json`] report.

use sipt_telemetry::json::Json;
use std::time::Instant;

/// One benchmark's measured result.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark name.
    pub name: String,
    /// Mean nanoseconds per iteration.
    pub ns_per_iter: f64,
    /// Iterations per measurement batch.
    pub iters: u64,
    /// Number of measurement batches.
    pub batches: u32,
}

impl BenchResult {
    /// This result as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("name", Json::str(&self.name)),
            ("ns_per_iter", Json::num(self.ns_per_iter)),
            ("iters", Json::num(self.iters as f64)),
            ("batches", Json::num(self.batches as f64)),
        ])
    }
}

/// The harness: accumulates results, prints as it goes.
#[derive(Debug)]
pub struct Bencher {
    target_ms: u64,
    batches: u32,
    results: Vec<BenchResult>,
}

impl Default for Bencher {
    fn default() -> Self {
        Self::new(50, 5)
    }
}

impl Bencher {
    /// A harness targeting `target_ms` of measured work per batch over
    /// `batches` batches.
    pub fn new(target_ms: u64, batches: u32) -> Self {
        Self { target_ms, batches, results: Vec::new() }
    }

    /// Quick settings for smoke runs (CI).
    pub fn quick() -> Self {
        Self::new(10, 3)
    }

    /// Measure `f`, which performs **one** iteration of the workload per
    /// call, and record/print the result.
    pub fn bench<F: FnMut()>(&mut self, name: &str, mut f: F) -> &BenchResult {
        // Calibrate: how many iterations fill the target batch time?
        let start = Instant::now();
        let mut calib_iters = 0u64;
        while start.elapsed().as_millis() < u128::from(self.target_ms.max(1)) {
            f();
            calib_iters += 1;
        }
        let iters = calib_iters.max(1);
        // Measure.
        let mut total_ns = 0u128;
        for _ in 0..self.batches {
            let t = Instant::now();
            for _ in 0..iters {
                f();
            }
            total_ns += t.elapsed().as_nanos();
        }
        let ns_per_iter = total_ns as f64 / (iters as f64 * f64::from(self.batches.max(1)));
        let result =
            BenchResult { name: name.to_owned(), ns_per_iter, iters, batches: self.batches };
        println!(
            "{name:<40} {ns_per_iter:>12.1} ns/iter  ({iters} iters x {} batches)",
            self.batches
        );
        self.results.push(result);
        self.results.last().expect("just pushed")
    }

    /// All results so far.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// All results as a JSON array.
    pub fn to_json(&self) -> Json {
        Json::arr(self.results.iter().map(BenchResult::to_json))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_measures_and_records() {
        let mut b = Bencher::new(1, 2);
        let mut acc = 0u64;
        let r = b.bench("noop_add", || {
            acc = acc.wrapping_add(std::hint::black_box(1));
        });
        assert!(r.ns_per_iter >= 0.0);
        assert!(r.iters >= 1);
        assert_eq!(b.results().len(), 1);
        let json = b.to_json().render();
        assert!(json.contains("noop_add"));
        assert!(acc > 0);
    }
}
