//! Table I: the L1 configuration space explored with the CACTI-like model.

fn main() {
    sipt_bench::header("Table I", "L1 cache configurations (32nm, 64B lines)");
    println!("Technology      32 nm (modelled analytically, calibrated to Table II)");
    println!("Cache line size 64 Bytes");
    println!("Capacity        16 KiB, 32 KiB, 64 KiB, 128 KiB");
    println!("Associativity   2-way, 4-way, 8-way, 16-way, 32-way");
    println!("Access mode     Parallel data and tag access");
    println!("Ports           1 or 2 for read, 1 for write");
    println!("Banks           1, 2 or 4 banks");
}
