//! Table I: the L1 configuration space explored with the CACTI-like model.

use sipt_telemetry::json::Json;

fn main() {
    let cli = sipt_bench::Cli::for_artifact("tab01");
    sipt_bench::header("Table I", "L1 cache configurations (32nm, 64B lines)");
    println!("Technology      32 nm (modelled analytically, calibrated to Table II)");
    println!("Cache line size 64 Bytes");
    println!("Capacity        16 KiB, 32 KiB, 64 KiB, 128 KiB");
    println!("Associativity   2-way, 4-way, 8-way, 16-way, 32-way");
    println!("Access mode     Parallel data and tag access");
    println!("Ports           1 or 2 for read, 1 for write");
    println!("Banks           1, 2 or 4 banks");
    cli.emit_json(
        "tab01",
        Json::obj([
            ("technology_nm", Json::u64(32)),
            ("line_bytes", Json::u64(64)),
            ("capacities_kib", Json::arr([16u64, 32, 64, 128].map(Json::u64))),
            ("associativities", Json::arr([2u64, 4, 8, 16, 32].map(Json::u64))),
            ("read_ports", Json::arr([1u64, 2].map(Json::u64))),
            ("write_ports", Json::arr([1u64].map(Json::u64))),
            ("banks", Json::arr([1u64, 2, 4].map(Json::u64))),
        ]),
    );
    cli.finish();
}
