//! Fig 15: quad-core multiprogrammed evaluation over the Table III mixes.

use sipt_sim::experiments::{quadcore, report};

fn main() {
    let cli = sipt_bench::Cli::for_artifact("fig15");
    sipt_bench::header(
        "Fig 15",
        "sum-of-IPC speedup, extra accesses and energy per mix (paper: +8.1% avg, 32KiB 2-way best)",
    );
    let (rows, summary) = quadcore::fig15(&cli.scale.mixes(), &cli.scale.quad_condition());
    print!("{}", quadcore::render(&rows, &summary));
    cli.emit_json("fig15", report::fig15_json(&rows, &summary));
    cli.finish();
}
