//! Ablation: software page coloring vs SIPT (related work, §II.D).
//!
//! An OS that colors pages (PFN low bits == VPN low bits, as ARMv6-era
//! systems required) makes even *naive* SIPT speculation always correct —
//! but it constrains the allocator and must be maintained forever. SIPT
//! gets the same fast-access rate from prediction alone. This bench runs
//! naive SIPT under both placement policies to show the equivalence, and
//! the combined predictor under the default policy to show prediction
//! makes coloring unnecessary.

use sipt_core::{sipt_32k_2w, L1Policy};
use sipt_mem::PlacementPolicy;
use sipt_sim::{Condition, Sweep, SystemKind};
use sipt_telemetry::json::Json;

fn main() {
    let cli = sipt_bench::Cli::for_artifact("ablation_coloring");
    sipt_bench::header(
        "Ablation: page coloring vs prediction",
        "naive SIPT fast-access rate under default vs colored placement; combined \
         predictor needs no OS help",
    );
    let base_cond = cli.scale.condition();
    let colored = Condition { placement: PlacementPolicy::Colored { bits: 2 }, ..base_cond };
    println!(
        "{:<16} {:>16} {:>16} {:>18}",
        "benchmark", "naive (default)", "naive (colored)", "combined (default)"
    );
    let benches = cli.scale.benchmarks();
    let mut sweep = Sweep::new();
    for &bench in &benches {
        sweep.bench(
            bench,
            sipt_32k_2w().with_policy(L1Policy::SiptNaive),
            SystemKind::OooThreeLevel,
            &base_cond,
        );
        sweep.bench(
            bench,
            sipt_32k_2w().with_policy(L1Policy::SiptNaive),
            SystemKind::OooThreeLevel,
            &colored,
        );
        sweep.bench(bench, sipt_32k_2w(), SystemKind::OooThreeLevel, &base_cond);
    }
    let mut runs = sweep.run().into_iter();
    let mut json_rows = Vec::new();
    for &bench in &benches {
        let naive = runs.next().expect("naive run");
        let naive_colored = runs.next().expect("colored run");
        let combined = runs.next().expect("combined run");
        println!(
            "{bench:<16} {:>15.1}% {:>15.1}% {:>17.1}%",
            naive.sipt.fast_fraction() * 100.0,
            naive_colored.sipt.fast_fraction() * 100.0,
            combined.sipt.fast_fraction() * 100.0,
        );
        json_rows.push(Json::obj([
            ("benchmark", Json::str(bench)),
            ("naive_default_fast", Json::num(naive.sipt.fast_fraction())),
            ("naive_colored_fast", Json::num(naive_colored.sipt.fast_fraction())),
            ("combined_default_fast", Json::num(combined.sipt.fast_fraction())),
        ]));
    }
    cli.emit_json("ablation_coloring", Json::obj([("rows", Json::arr(json_rows))]));
    cli.finish();
}
