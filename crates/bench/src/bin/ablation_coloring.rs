//! Ablation: software page coloring vs SIPT (related work, §II.D).
//!
//! An OS that colors pages (PFN low bits == VPN low bits, as ARMv6-era
//! systems required) makes even *naive* SIPT speculation always correct —
//! but it constrains the allocator and must be maintained forever. SIPT
//! gets the same fast-access rate from prediction alone. This bench runs
//! naive SIPT under both placement policies to show the equivalence, and
//! the combined predictor under the default policy to show prediction
//! makes coloring unnecessary.

use sipt_core::{sipt_32k_2w, L1Policy};
use sipt_mem::PlacementPolicy;
use sipt_sim::{run_benchmark, Condition, SystemKind};
use sipt_telemetry::json::Json;

fn main() {
    let cli = sipt_bench::Cli::from_args();
    sipt_bench::header(
        "Ablation: page coloring vs prediction",
        "naive SIPT fast-access rate under default vs colored placement; combined \
         predictor needs no OS help",
    );
    let base_cond = cli.scale.condition();
    let colored = Condition { placement: PlacementPolicy::Colored { bits: 2 }, ..base_cond };
    println!(
        "{:<16} {:>16} {:>16} {:>18}",
        "benchmark", "naive (default)", "naive (colored)", "combined (default)"
    );
    let mut json_rows = Vec::new();
    for bench in cli.scale.benchmarks() {
        let naive = run_benchmark(
            bench,
            sipt_32k_2w().with_policy(L1Policy::SiptNaive),
            SystemKind::OooThreeLevel,
            &base_cond,
        );
        let naive_colored = run_benchmark(
            bench,
            sipt_32k_2w().with_policy(L1Policy::SiptNaive),
            SystemKind::OooThreeLevel,
            &colored,
        );
        let combined = run_benchmark(bench, sipt_32k_2w(), SystemKind::OooThreeLevel, &base_cond);
        println!(
            "{bench:<16} {:>15.1}% {:>15.1}% {:>17.1}%",
            naive.sipt.fast_fraction() * 100.0,
            naive_colored.sipt.fast_fraction() * 100.0,
            combined.sipt.fast_fraction() * 100.0,
        );
        json_rows.push(Json::obj([
            ("benchmark", Json::str(bench)),
            ("naive_default_fast", Json::num(naive.sipt.fast_fraction())),
            ("naive_colored_fast", Json::num(naive_colored.sipt.fast_fraction())),
            ("combined_default_fast", Json::num(combined.sipt.fast_fraction())),
        ]));
    }
    cli.emit_json("ablation_coloring", Json::obj([("rows", Json::arr(json_rows))]));
}
