//! Trace capture/replay tool, mirroring the Macsim record-then-replay
//! workflow:
//!
//! ```text
//! trace_tool record <benchmark> <file> [instructions]   # capture
//! trace_tool stats  <file>                              # inspect
//! trace_tool replay <benchmark> <file>                  # run on a machine
//! ```
//!
//! `replay` re-creates the benchmark's address space (same seed) so the
//! trace's virtual addresses resolve, then replays the file through a
//! 32 KiB 2-way SIPT machine and prints IPC.

use sipt_core::sipt_32k_2w;
use sipt_cpu::MemOp;
use sipt_mem::{AddressSpace, BuddyAllocator, PlacementPolicy};
use sipt_sim::{replay_trace, resilience, Machine, SystemKind, TaskFailure};
use sipt_workloads::{benchmark, read_trace, write_trace, MaterializedTrace, TraceGen};
use std::fs::File;
use std::process::ExitCode;
use std::time::Instant;

const SEED: u64 = 42;
const MEMORY: u64 = 1 << 30;

fn usage() -> ExitCode {
    eprintln!("usage: trace_tool record <benchmark> <file> [instructions]");
    eprintln!("       trace_tool stats  <file>");
    eprintln!("       trace_tool replay <benchmark> <file>");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("record") if args.len() >= 3 => {
            let Some(spec) = benchmark(&args[1]) else {
                eprintln!("unknown benchmark {}", args[1]);
                return ExitCode::FAILURE;
            };
            let instructions: u64 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(200_000);
            let mut phys = BuddyAllocator::with_bytes(MEMORY);
            let mut asp = AddressSpace::new(0, PlacementPolicy::LinuxDefault);
            let gen = TraceGen::build(&spec, &mut asp, &mut phys, instructions, SEED)
                .expect("workload fits");
            let file = File::create(&args[2]).expect("create trace file");
            let n = write_trace(file, gen).expect("write trace");
            println!("recorded {n} instructions of {} to {}", args[1], args[2]);
            ExitCode::SUCCESS
        }
        Some("stats") if args.len() >= 2 => {
            let file = File::open(&args[1]).expect("open trace file");
            let insts = read_trace(file).expect("parse trace");
            let loads = insts.iter().filter(|i| i.mem.is_some_and(|m| m.op == MemOp::Load)).count();
            let stores =
                insts.iter().filter(|i| i.mem.is_some_and(|m| m.op == MemOp::Store)).count();
            let pcs: std::collections::HashSet<u64> =
                insts.iter().filter(|i| i.mem.is_some()).map(|i| i.pc).collect();
            println!(
                "{}: {} instructions, {} loads, {} stores, {} static memory PCs",
                args[1],
                insts.len(),
                loads,
                stores,
                pcs.len()
            );
            ExitCode::SUCCESS
        }
        Some("replay") if args.len() >= 3 => {
            let Some(spec) = benchmark(&args[1]) else {
                eprintln!("unknown benchmark {}", args[1]);
                return ExitCode::FAILURE;
            };
            let file = File::open(&args[2]).expect("open trace file");
            let insts = read_trace(file).expect("parse trace");
            // Rebuild the same address space (same seed) so the recorded
            // virtual addresses are mapped.
            let mut phys = BuddyAllocator::with_bytes(MEMORY);
            let mut asp = AddressSpace::new(0, PlacementPolicy::LinuxDefault);
            let _gen = TraceGen::build(&spec, &mut asp, &mut phys, 0, SEED).expect("workload fits");
            let mut machine = Machine::new(asp, sipt_32k_2w(), SystemKind::OooThreeLevel);
            let trace = MaterializedTrace::from_insts(insts);
            let n = trace.len() as u64;
            // Trace files are untrusted input: a trace whose VAs don't
            // resolve in the rebuilt address space (wrong benchmark, stale
            // seed, corrupted file) is a deterministic input error, so it
            // surfaces as a structured, *non-retried* failure — the same
            // registry + failure table + exit-1 contract the sweep
            // binaries use — never as a raw panic.
            let label = format!("replay:{}", args[1]);
            let t0 = Instant::now();
            match replay_trace(SystemKind::OooThreeLevel, &mut machine, &trace, &label) {
                Ok(result) => {
                    println!(
                        "replayed {n} instructions: IPC {:.3}, L1 hit {:.1}%, fast {:.1}%",
                        result.ipc(),
                        machine.l1().stats().hit_rate() * 100.0,
                        machine.l1().stats().fast_fraction() * 100.0
                    );
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    resilience::record_failure(TaskFailure {
                        task: 0,
                        label,
                        worker: 0,
                        panic_msg: e.to_string(),
                        elapsed_ms: t0.elapsed().as_secs_f64() * 1e3,
                        attempts: 1,
                    });
                    eprint!("{}", resilience::failure_table());
                    eprintln!("1 trace replay failed; exiting non-zero");
                    ExitCode::FAILURE
                }
            }
        }
        _ => usage(),
    }
}
