//! Free-form exploration CLI: run any benchmark on any L1 configuration
//! and policy under any operating condition.
//!
//! ```text
//! explore <benchmark> [--l1 32k2w|32k4w|64k4w|128k4w|base|16k4w]
//!                     [--policy naive|bypass|combined|ideal|vipt|pipt]
//!                     [--system ooo|inorder] [--placement default|thpoff|scattered]
//!                     [--fragmented] [--waypred] [--instructions N]
//! ```

use sipt_core::{
    baseline_32k_8w_vipt, sipt_128k_4w, sipt_32k_2w, sipt_32k_4w, sipt_64k_4w, small_16k_4w_vipt,
    L1Policy,
};
use sipt_mem::PlacementPolicy;
use sipt_sim::{run_benchmark, Condition, SystemKind};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(bench) = args.first().filter(|a| !a.starts_with("--")).cloned() else {
        eprintln!("usage: explore <benchmark> [--l1 ...] [--policy ...] [--system ...] ...");
        return ExitCode::FAILURE;
    };
    let flag_value = |name: &str| -> Option<String> {
        args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).cloned()
    };
    let has_flag = |name: &str| args.iter().any(|a| a == name);

    let mut l1 = match flag_value("--l1").as_deref() {
        None | Some("32k2w") => sipt_32k_2w(),
        Some("32k4w") => sipt_32k_4w(),
        Some("64k4w") => sipt_64k_4w(),
        Some("128k4w") => sipt_128k_4w(),
        Some("base") => baseline_32k_8w_vipt(),
        Some("16k4w") => small_16k_4w_vipt(),
        Some(other) => {
            eprintln!("unknown --l1 {other}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(policy) = flag_value("--policy") {
        l1 = l1.with_policy(match policy.as_str() {
            "naive" => L1Policy::SiptNaive,
            "bypass" => L1Policy::SiptBypass,
            "combined" => L1Policy::SiptCombined,
            "ideal" => L1Policy::Ideal,
            "vipt" => L1Policy::Vipt,
            "pipt" => L1Policy::Pipt,
            other => {
                eprintln!("unknown --policy {other}");
                return ExitCode::FAILURE;
            }
        });
    }
    if has_flag("--waypred") {
        l1 = l1.with_way_prediction(true);
    }
    let system = match flag_value("--system").as_deref() {
        None | Some("ooo") => SystemKind::OooThreeLevel,
        Some("inorder") => SystemKind::InOrderTwoLevel,
        Some(other) => {
            eprintln!("unknown --system {other}");
            return ExitCode::FAILURE;
        }
    };
    let placement = match flag_value("--placement").as_deref() {
        None | Some("default") => PlacementPolicy::LinuxDefault,
        Some("thpoff") => PlacementPolicy::ThpOff,
        Some("scattered") => PlacementPolicy::Scattered,
        Some(other) => {
            eprintln!("unknown --placement {other}");
            return ExitCode::FAILURE;
        }
    };
    let cond = Condition {
        placement,
        fragmented: has_flag("--fragmented"),
        memory_bytes: 2 << 30,
        instructions: flag_value("--instructions").and_then(|s| s.parse().ok()).unwrap_or(200_000),
        ..Condition::default()
    };

    let m = run_benchmark(&bench, l1.clone(), system, &cond);
    if sipt_telemetry::report::json_requested() {
        use sipt_telemetry::report;
        let envelope =
            report::envelope("explore", sipt_sim::experiments::report::run_summary_json(&m));
        match report::write_report(&report::results_dir(), "explore", &envelope) {
            Ok(p) => eprintln!("wrote {}", p.display()),
            Err(e) => eprintln!("failed to write explore.json: {e}"),
        }
    }
    println!("{bench} on {} ({}, {:?}):", l1.name, l1.policy, system);
    println!("  IPC            {:.4}", m.ipc());
    println!("  L1 hit rate    {:.2}%", m.sipt.hit_rate() * 100.0);
    println!("  fast accesses  {:.2}%", m.sipt.fast_fraction() * 100.0);
    println!("  extra accesses {:.2}%", m.sipt.extra_access_fraction() * 100.0);
    println!("  TLB L1 hits    {:.2}%", m.tlb.l1_hit_rate() * 100.0);
    if let Some(l2) = m.l2 {
        println!("  L2 hit rate    {:.2}%", l2.hit_rate() * 100.0);
    }
    println!("  LLC hit rate   {:.2}%", m.llc.hit_rate() * 100.0);
    println!("  DRAM row hits  {:.2}%", m.dram.row_hit_rate() * 100.0);
    println!("  hugepages      {:.2}%", m.huge_fraction * 100.0);
    println!(
        "  energy         {:.3} mJ (dynamic {:.3} mJ)",
        m.energy.total() * 1e3,
        m.energy.dynamic() * 1e3
    );
    if let Some(wp) = m.way_pred {
        println!("  way-pred acc   {:.2}%", wp.accuracy() * 100.0);
    }
    ExitCode::SUCCESS
}
