//! Fig 3: IPC across L1 configurations (ideal indexing) on the in-order core.

use sipt_sim::experiments::{ideal, report};

fn main() {
    let cli = sipt_bench::Cli::for_artifact("fig03");
    sipt_bench::header(
        "Fig 3",
        "IPC vs L1 config, in-order core (paper: 64KiB 4-way best, +13%; 16KiB −11.3%)",
    );
    let fig = ideal::fig3(&cli.scale.benchmarks(), &cli.scale.condition());
    print!("{}", ideal::render(&fig));
    cli.emit_json("fig03", report::ideal_json(&fig));
    cli.finish();
}
