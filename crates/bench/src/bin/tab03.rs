//! Table III: the multiprogrammed quad-core workloads.

use sipt_workloads::MIXES;

fn main() {
    sipt_bench::header("Table III", "multi-programmed workloads");
    for (name, apps) in MIXES {
        println!("{name:<6} {}", apps.join(", "));
    }
}
