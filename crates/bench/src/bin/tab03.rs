//! Table III: the multiprogrammed quad-core workloads.

use sipt_telemetry::json::Json;
use sipt_workloads::MIXES;

fn main() {
    let cli = sipt_bench::Cli::for_artifact("tab03");
    sipt_bench::header("Table III", "multi-programmed workloads");
    for (name, apps) in MIXES {
        println!("{name:<6} {}", apps.join(", "));
    }
    cli.emit_json(
        "tab03",
        Json::obj([(
            "mixes",
            Json::arr(MIXES.iter().map(|(name, apps)| {
                Json::obj([
                    ("name", Json::str(*name)),
                    ("apps", Json::arr(apps.iter().map(|&a| Json::str(a)))),
                ])
            })),
        )]),
    );
    cli.finish();
}
