//! Fig 5: fraction of correct speculations vs number of speculated bits.

use sipt_bench::Scale;
use sipt_sim::experiments::speculation;

fn main() {
    let scale = Scale::from_args();
    sipt_bench::header(
        "Fig 5",
        "fraction of accesses whose 1/2/3 index bits survive translation + hugepage coverage",
    );
    let rows = speculation::fig5(&scale.benchmarks(), &scale.condition());
    print!("{}", speculation::render(&rows));
}
