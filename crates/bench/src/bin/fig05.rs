//! Fig 5: fraction of correct speculations vs number of speculated bits.

use sipt_sim::experiments::{report, speculation};

fn main() {
    let cli = sipt_bench::Cli::for_artifact("fig05");
    sipt_bench::header(
        "Fig 5",
        "fraction of accesses whose 1/2/3 index bits survive translation + hugepage coverage",
    );
    let rows = speculation::fig5(&cli.scale.benchmarks(), &cli.scale.condition());
    print!("{}", speculation::render(&rows));
    cli.emit_json("fig05", report::fig5_json(&rows));
    cli.finish();
}
