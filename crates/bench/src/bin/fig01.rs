//! Fig 1: L1 latency (range and mean) relative to the 32 KiB 8-way
//! baseline across the Table I design space.

use sipt_sim::experiments::{fig01, report};

fn main() {
    let cli = sipt_bench::Cli::for_artifact("fig01");
    sipt_bench::header(
        "Fig 1",
        "latency range/mean normalized to 32KiB 8-way; associativity dominates, \
         desirable configs are VIPT-infeasible",
    );
    let rows = fig01::run();
    print!("{}", fig01::render(&rows));
    let worst = rows.iter().map(|r| r.max).fold(0.0f64, f64::max);
    println!("\nworst-case normalized latency: {worst:.2}x (paper: up to 7.4x)");
    cli.emit_json("fig01", report::fig1_json(&rows));
    cli.finish();
}
