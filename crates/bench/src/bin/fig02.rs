//! Fig 2: IPC across L1 configurations (ideal indexing) on the OOO core.

use sipt_sim::experiments::{ideal, report};

fn main() {
    let cli = sipt_bench::Cli::for_artifact("fig02");
    sipt_bench::header(
        "Fig 2",
        "IPC vs L1 config, OOO core, normalized to 32KiB 8-way (paper: 32KiB 2-way best, +8.2%)",
    );
    let fig = ideal::fig2(&cli.scale.benchmarks(), &cli.scale.condition());
    print!("{}", ideal::render(&fig));
    cli.emit_json("fig02", report::ideal_json(&fig));
    cli.finish();
}
