//! `sipt-inspect` — offline analysis and regression gating for the JSON
//! report artifacts the figure binaries write to `results/`.
//!
//! ```text
//! sipt-inspect summary FILE...                    orient on artifacts
//! sipt-inspect diff A B                           field-by-field deltas
//! sipt-inspect regress --baseline B --current C   CI perf gate (exit 1)
//!              [--max-ratio [NAME=]X]...
//! sipt-inspect timeline FILE...                   per-worker utilization
//! ```
//!
//! Reads every schema version the repo has produced (v1–v5). `regress`
//! exits 1 when any non-flaky invariant fails — that exit code *is* the
//! CI contract — and 2 on usage or I/O errors.

use sipt_bench::inspect;
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: sipt-inspect <command> [args]

commands:
  summary FILE...                       schema version, blocks, payload shape
  diff A B                              recursive field-by-field comparison
  regress --baseline FILE --current FILE [--max-ratio [NAME=]X]...
                                        non-flaky perf gate; exit 1 on regression
                                        (per-entry wall-clock ratio gate defaults
                                        to 32; --max-ratio 0 disables it; repeat
                                        with NAME=X for per-benchmark bounds,
                                        e.g. --max-ratio block_replay_mips=4 —
                                        named throughput fields gate downward)
  timeline FILE...                      per-worker utilization bars";

/// Default per-entry wall-clock growth bound for `regress`. Deliberately
/// generous: shared CI runners jitter by integer factors, so the gate is
/// calibrated to catch catastrophic regressions (an accidentally
/// deoptimized kernel, a debug build) without flaking on load noise.
/// `--max-ratio 0` disables the band entirely; any positive value
/// overrides it.
const DEFAULT_MAX_RATIO: f64 = 32.0;

fn fail(msg: &str) -> ExitCode {
    eprintln!("sipt-inspect: {msg}");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first().map(String::as_str) else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let rest = &args[1..];
    match command {
        "summary" | "timeline" => {
            if rest.is_empty() {
                return fail(&format!("{command} needs at least one FILE\n\n{USAGE}"));
            }
            for (i, arg) in rest.iter().enumerate() {
                let doc = match inspect::load(&PathBuf::from(arg)) {
                    Ok(doc) => doc,
                    Err(e) => return fail(&e),
                };
                if i > 0 {
                    println!();
                }
                let text = if command == "summary" {
                    inspect::summary(&doc)
                } else {
                    inspect::timeline(&doc)
                };
                print!("{text}");
            }
            ExitCode::SUCCESS
        }
        "diff" => {
            let [a, b] = rest else {
                return fail(&format!("diff needs exactly two FILEs\n\n{USAGE}"));
            };
            let (a, b) = match (inspect::load(&PathBuf::from(a)), inspect::load(&PathBuf::from(b)))
            {
                (Ok(a), Ok(b)) => (a, b),
                (Err(e), _) | (_, Err(e)) => return fail(&e),
            };
            let d = inspect::diff(&a, &b);
            if d.is_empty() {
                println!("identical");
            } else {
                print!("{d}");
            }
            ExitCode::SUCCESS
        }
        "regress" => {
            let mut baseline = None;
            let mut current = None;
            let mut limits = inspect::RatioLimits::uniform(Some(DEFAULT_MAX_RATIO));
            let mut it = rest.iter();
            while let Some(flag) = it.next() {
                let mut value =
                    || it.next().cloned().ok_or_else(|| format!("{flag} needs a value"));
                match flag.as_str() {
                    "--baseline" => baseline = Some(value()),
                    "--current" => current = Some(value()),
                    "--max-ratio" => {
                        let raw = match value() {
                            Ok(raw) => raw,
                            Err(e) => return fail(&e),
                        };
                        // `NAME=X` overrides one entry; bare `X` replaces
                        // the global default. `0` disables either band.
                        let (name, num) = match raw.split_once('=') {
                            Some((name, num)) if !name.is_empty() => (Some(name), num),
                            _ => (None, raw.as_str()),
                        };
                        let bound = match num.parse::<f64>() {
                            Ok(0.0) => None,
                            Ok(v) if v > 0.0 => Some(v),
                            _ => {
                                return fail(&format!(
                                    "--max-ratio takes [NAME=]X with X a positive \
                                     number (or 0 to disable), got {raw:?}"
                                ))
                            }
                        };
                        match name {
                            Some(name) => limits.per_name.push((name.to_string(), bound)),
                            None => limits.default = bound,
                        }
                    }
                    other => return fail(&format!("unknown flag {other}\n\n{USAGE}")),
                }
            }
            let (Some(Ok(baseline)), Some(Ok(current))) = (baseline, current) else {
                return fail(&format!(
                    "regress needs --baseline FILE and --current FILE\n\n{USAGE}"
                ));
            };
            let (base_doc, cur_doc) = match (
                inspect::load(&PathBuf::from(&baseline)),
                inspect::load(&PathBuf::from(&current)),
            ) {
                (Ok(a), Ok(b)) => (a, b),
                (Err(e), _) | (_, Err(e)) => return fail(&e),
            };
            let outcome = inspect::regress(&base_doc, &cur_doc, &limits);
            print!("{}", outcome.render());
            if outcome.ok() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        other => fail(&format!("unknown command {other:?}\n\n{USAGE}")),
    }
}
