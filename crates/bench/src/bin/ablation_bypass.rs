//! Ablation: perceptron vs saturating-counter bypass predictor (§V: the
//! paper measured ~85% for counters vs >90% for the perceptron, and
//! inconsistency across applications).

use sipt_core::{sipt_32k_2w, BypassKind, L1Policy};
use sipt_sim::{Sweep, SystemKind};
use sipt_telemetry::json::Json;

fn main() {
    let cli = sipt_bench::Cli::for_artifact("ablation_bypass");
    sipt_bench::header(
        "Ablation: bypass predictor",
        "perceptron vs 2-bit counters, SIPT-bypass policy, 2 speculative bits",
    );
    let cond = cli.scale.condition();
    println!(
        "{:<16} {:>12} {:>12} {:>12} {:>12}",
        "benchmark", "perc acc", "ctr acc", "perc extra", "ctr extra"
    );
    let benches = cli.scale.benchmarks();
    let mut sweep = Sweep::new();
    for &bench in &benches {
        sweep.bench(
            bench,
            sipt_32k_2w().with_policy(L1Policy::SiptBypass),
            SystemKind::OooThreeLevel,
            &cond,
        );
        sweep.bench(
            bench,
            sipt_32k_2w().with_policy(L1Policy::SiptBypass).with_bypass(BypassKind::Counter),
            SystemKind::OooThreeLevel,
            &cond,
        );
    }
    let mut runs = sweep.run().into_iter();
    let (mut pacc, mut cacc) = (Vec::new(), Vec::new());
    let mut json_rows = Vec::new();
    for &bench in &benches {
        let perc = runs.next().expect("perceptron run");
        let ctr = runs.next().expect("counter run");
        let acc = |m: &sipt_sim::RunMetrics| {
            (m.sipt.correct_speculation + m.sipt.correct_bypass) as f64
                / m.sipt.accesses.max(1) as f64
        };
        pacc.push(acc(&perc));
        cacc.push(acc(&ctr));
        println!(
            "{bench:<16} {:>11.1}% {:>11.1}% {:>11.1}% {:>11.1}%",
            acc(&perc) * 100.0,
            acc(&ctr) * 100.0,
            perc.sipt.extra_access_fraction() * 100.0,
            ctr.sipt.extra_access_fraction() * 100.0,
        );
        json_rows.push(Json::obj([
            ("benchmark", Json::str(bench)),
            ("perceptron_accuracy", Json::num(acc(&perc))),
            ("counter_accuracy", Json::num(acc(&ctr))),
            ("perceptron_extra", Json::num(perc.sipt.extra_access_fraction())),
            ("counter_extra", Json::num(ctr.sipt.extra_access_fraction())),
        ]));
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    println!("{:<16} {:>11.1}% {:>11.1}%", "Average", mean(&pacc) * 100.0, mean(&cacc) * 100.0);
    cli.emit_json(
        "ablation_bypass",
        Json::obj([
            ("rows", Json::arr(json_rows)),
            ("mean_perceptron_accuracy", Json::num(mean(&pacc))),
            ("mean_counter_accuracy", Json::num(mean(&cacc))),
        ]),
    );
    cli.finish();
}
