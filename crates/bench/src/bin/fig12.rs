//! Fig 12: combined bypass + IDB predictor accuracy, 1/2/3 bits.

use sipt_bench::Scale;
use sipt_sim::experiments::combined;

fn main() {
    let scale = Scale::from_args();
    sipt_bench::header(
        "Fig 12",
        "fast accesses = perceptron-approved + IDB hits (paper: >90% at 1 bit, >70% at 2-3)",
    );
    let rows = combined::fig12(&scale.benchmarks(), &scale.condition());
    print!("{}", combined::render_fig12(&rows));
}
