//! Fig 12: combined bypass + IDB predictor accuracy, 1/2/3 bits.

use sipt_sim::experiments::{combined, report};

fn main() {
    let cli = sipt_bench::Cli::for_artifact("fig12");
    sipt_bench::header(
        "Fig 12",
        "fast accesses = perceptron-approved + IDB hits (paper: >90% at 1 bit, >70% at 2-3)",
    );
    let rows = combined::fig12(&cli.scale.benchmarks(), &cli.scale.condition());
    print!("{}", combined::render_fig12(&rows));
    cli.emit_json("fig12", report::fig12_json(&rows));
    cli.finish();
}
