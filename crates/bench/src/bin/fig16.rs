//! Figs 16–17: way prediction on the baseline and on top of SIPT.

use sipt_bench::Scale;
use sipt_sim::experiments::waypred;

fn main() {
    let scale = Scale::from_args();
    sipt_bench::header(
        "Figs 16-17",
        "way prediction accuracy rises 89% -> 97.3% when SIPT lowers associativity; \
         extra 2.2% energy saving on top of SIPT",
    );
    let (rows, summary) = waypred::fig16_fig17(&scale.benchmarks(), &scale.condition());
    print!("{}", waypred::render(&rows, &summary));
}
