//! Figs 16–17: way prediction on the baseline and on top of SIPT.

use sipt_sim::experiments::{report, waypred};

fn main() {
    let cli = sipt_bench::Cli::for_artifact("fig16");
    sipt_bench::header(
        "Figs 16-17",
        "way prediction accuracy rises 89% -> 97.3% when SIPT lowers associativity; \
         extra 2.2% energy saving on top of SIPT",
    );
    let (rows, summary) = waypred::fig16_fig17(&cli.scale.benchmarks(), &cli.scale.condition());
    print!("{}", waypred::render(&rows, &summary));
    cli.emit_json("fig16", report::waypred_json(&rows, &summary));
    cli.finish();
}
