//! Figs 13–14: SIPT with IDB (32KiB/2-way/2-cycle) IPC and energy.

use sipt_bench::Scale;
use sipt_sim::experiments::combined;

fn main() {
    let scale = Scale::from_args();
    sipt_bench::header(
        "Figs 13-14",
        "SIPT+IDB vs baseline and ideal (paper: +5.9% IPC, 2.3% from ideal; energy 67.8%)",
    );
    let (rows, summary) = combined::fig13_fig14(&scale.benchmarks(), &scale.condition());
    print!("{}", combined::render_fig13_fig14(&rows, &summary));
}
