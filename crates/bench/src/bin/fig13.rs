//! Figs 13–14: SIPT with IDB (32KiB/2-way/2-cycle) IPC and energy.

use sipt_core::sipt_32k_2w;
use sipt_sim::experiments::{combined, report};
use sipt_sim::{run_benchmark, SystemKind};

fn main() {
    let cli = sipt_bench::Cli::for_artifact("fig13");
    sipt_bench::header(
        "Figs 13-14",
        "SIPT+IDB vs baseline and ideal (paper: +5.9% IPC, 2.3% from ideal; energy 67.8%)",
    );
    let cond = cli.scale.condition();
    let benches = cli.scale.benchmarks();
    let (rows, summary) = combined::fig13_fig14(&benches, &cond);
    print!("{}", combined::render_fig13_fig14(&rows, &summary));
    if cli.json {
        // The headline artifact also carries one full run summary
        // (latency/margin/delta histograms, phase profile) so downstream
        // tooling can drill past the figure-level aggregates.
        let mut payload = report::fig13_json(&rows, &summary);
        let sample = run_benchmark(benches[0], sipt_32k_2w(), SystemKind::OooThreeLevel, &cond);
        payload.insert("sample_run", report::run_summary_json(&sample));
        cli.emit_json("fig13", payload);
    }
    cli.finish();
}
