//! Future-work exploration: SIPT applied to the instruction cache (the
//! paper defers this, predicting it works "at least as well" as data).

use sipt_core::sipt_32k_2w;
use sipt_sim::experiments::{icache, report};

fn main() {
    let cli = sipt_bench::Cli::for_artifact("future_icache");
    sipt_bench::header(
        "Future work: I-cache SIPT",
        "replay each workload's PC stream through a 32KiB/2-way SIPT I-L1",
    );
    let rows =
        icache::future_icache(&cli.scale.benchmarks(), &cli.scale.condition(), sipt_32k_2w());
    print!("{}", icache::render(&rows));
    cli.emit_json("future_icache", report::icache_json(&rows));
    cli.finish();
}
