//! Fig 9: perceptron bypass predictor — four-outcome breakdown, 1/2/3 bits.

use sipt_sim::experiments::{bypass, report};

fn main() {
    let cli = sipt_bench::Cli::for_artifact("fig09");
    sipt_bench::header(
        "Fig 9",
        "correct speculation / correct bypass / opportunity loss / extra access \
         (paper: >90% accuracy everywhere)",
    );
    let rows = bypass::fig9(&cli.scale.benchmarks(), &cli.scale.condition());
    print!("{}", bypass::render(&rows));
    cli.emit_json("fig09", report::fig9_json(&rows));
    cli.finish();
}
