//! Fig 9: perceptron bypass predictor — four-outcome breakdown, 1/2/3 bits.

use sipt_bench::Scale;
use sipt_sim::experiments::bypass;

fn main() {
    let scale = Scale::from_args();
    sipt_bench::header(
        "Fig 9",
        "correct speculation / correct bypass / opportunity loss / extra access \
         (paper: >90% accuracy everywhere)",
    );
    let rows = bypass::fig9(&scale.benchmarks(), &scale.condition());
    print!("{}", bypass::render(&rows));
}
