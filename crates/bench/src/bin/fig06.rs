//! Figs 6–7: naive SIPT (32KiB/2-way/2-cycle) IPC, extra accesses, energy.

use sipt_bench::Scale;
use sipt_sim::experiments::naive;

fn main() {
    let scale = Scale::from_args();
    sipt_bench::header(
        "Figs 6-7",
        "naive SIPT vs baseline and ideal (paper: energy to 74.4%, 8.5% worse than ideal)",
    );
    let (rows, summary) = naive::fig6_fig7(&scale.benchmarks(), &scale.condition());
    print!("{}", naive::render(&rows, &summary));
}
