//! Figs 6–7: naive SIPT (32KiB/2-way/2-cycle) IPC, extra accesses, energy.

use sipt_sim::experiments::{naive, report};

fn main() {
    let cli = sipt_bench::Cli::for_artifact("fig06");
    sipt_bench::header(
        "Figs 6-7",
        "naive SIPT vs baseline and ideal (paper: energy to 74.4%, 8.5% worse than ideal)",
    );
    let (rows, summary) = naive::fig6_fig7(&cli.scale.benchmarks(), &cli.scale.condition());
    print!("{}", naive::render(&rows, &summary));
    cli.emit_json("fig06", report::naive_json(&rows, &summary));
    cli.finish();
}
