//! Fig 18: sensitivity — fragmented memory, THP off, zero contiguity.

use sipt_sim::experiments::{report, sensitivity};

fn main() {
    let cli = sipt_bench::Cli::for_artifact("fig18");
    sipt_bench::header(
        "Fig 18",
        "IPC/energy/accuracy under normal, fragmented (Fu(9)>0.95), THP-off and \
         no->4KiB-contiguity conditions, OOO and in-order",
    );
    let groups = sensitivity::fig18(&cli.scale.benchmarks(), &cli.scale.condition());
    print!("{}", sensitivity::render(&groups));
    cli.emit_json("fig18", report::fig18_json(&groups));
    cli.finish();
}
