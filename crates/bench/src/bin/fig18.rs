//! Fig 18: sensitivity — fragmented memory, THP off, zero contiguity.

use sipt_bench::Scale;
use sipt_sim::experiments::sensitivity;

fn main() {
    let scale = Scale::from_args();
    sipt_bench::header(
        "Fig 18",
        "IPC/energy/accuracy under normal, fragmented (Fu(9)>0.95), THP-off and \
         no->4KiB-contiguity conditions, OOO and in-order",
    );
    let groups = sensitivity::fig18(&scale.benchmarks(), &scale.condition());
    print!("{}", sensitivity::render(&groups));
}
