//! Ablation: instruction-scheduler replay cost (§VII.C). The paper argues
//! SIPT's mispredictions are rare enough that even a simple (expensive)
//! replay mechanism barely matters; this sweep quantifies that by charging
//! 0–16 extra cycles per misspeculation.

use sipt_core::{baseline_32k_8w_vipt, sipt_32k_2w};
use sipt_sim::{harmonic_mean, Sweep, SystemKind};
use sipt_telemetry::json::Json;

fn main() {
    let cli = sipt_bench::Cli::for_artifact("ablation_replay");
    sipt_bench::header(
        "Ablation: scheduler replay penalty",
        "mean SIPT speedup vs per-misspeculation replay cost (paper §VII.C: rare \
         mispredictions tolerate simple replay)",
    );
    let cond = cli.scale.condition();
    println!("{:<10} {:>12} {:>14}", "penalty", "mean speedup", "worst benchmark");
    let benches = cli.scale.benchmarks();
    let penalties = [0u64, 2, 4, 8, 16];
    let mut sweep = Sweep::new();
    for &penalty in &penalties {
        for &bench in &benches {
            sweep.bench(bench, baseline_32k_8w_vipt(), SystemKind::OooThreeLevel, &cond);
            sweep.bench(
                bench,
                sipt_32k_2w().with_replay_penalty(penalty),
                SystemKind::OooThreeLevel,
                &cond,
            );
        }
    }
    let mut runs = sweep.run().into_iter();
    let mut json_rows = Vec::new();
    for penalty in penalties {
        let mut speedups = Vec::new();
        let mut worst = ("-", f64::INFINITY);
        for &bench in &benches {
            let base = runs.next().expect("baseline run");
            let sipt = runs.next().expect("sipt run");
            let s = sipt.ipc_vs(&base);
            if s < worst.1 {
                worst = (bench, s);
            }
            speedups.push(s);
        }
        let mean_speedup = harmonic_mean(&speedups);
        println!(
            "{penalty:<10} {:>11.1}% {:>9} {:.3}",
            (mean_speedup - 1.0) * 100.0,
            worst.0,
            worst.1
        );
        json_rows.push(Json::obj([
            ("penalty_cycles", Json::u64(penalty)),
            ("mean_speedup", Json::num(mean_speedup)),
            ("worst_benchmark", Json::str(worst.0)),
            ("worst_speedup", Json::num(worst.1)),
        ]));
    }
    cli.emit_json("ablation_replay", Json::obj([("rows", Json::arr(json_rows))]));
    cli.finish();
}
