//! Ablation: instruction-scheduler replay cost (§VII.C). The paper argues
//! SIPT's mispredictions are rare enough that even a simple (expensive)
//! replay mechanism barely matters; this sweep quantifies that by charging
//! 0–16 extra cycles per misspeculation.

use sipt_bench::Scale;
use sipt_core::{baseline_32k_8w_vipt, sipt_32k_2w};
use sipt_sim::{harmonic_mean, run_benchmark, SystemKind};

fn main() {
    let scale = Scale::from_args();
    sipt_bench::header(
        "Ablation: scheduler replay penalty",
        "mean SIPT speedup vs per-misspeculation replay cost (paper §VII.C: rare \
         mispredictions tolerate simple replay)",
    );
    let cond = scale.condition();
    println!("{:<10} {:>12} {:>14}", "penalty", "mean speedup", "worst benchmark");
    for penalty in [0u64, 2, 4, 8, 16] {
        let mut speedups = Vec::new();
        let mut worst = ("-", f64::INFINITY);
        for bench in scale.benchmarks() {
            let base = run_benchmark(
                bench,
                baseline_32k_8w_vipt(),
                SystemKind::OooThreeLevel,
                &cond,
            );
            let sipt = run_benchmark(
                bench,
                sipt_32k_2w().with_replay_penalty(penalty),
                SystemKind::OooThreeLevel,
                &cond,
            );
            let s = sipt.ipc_vs(&base);
            if s < worst.1 {
                worst = (bench, s);
            }
            speedups.push(s);
        }
        println!(
            "{penalty:<10} {:>11.1}% {:>9} {:.3}",
            (harmonic_mean(&speedups) - 1.0) * 100.0,
            worst.0,
            worst.1
        );
    }
}
