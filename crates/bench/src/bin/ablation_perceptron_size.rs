//! Ablation: perceptron table-size and history-length sensitivity (§V:
//! "our experiments did not show strong sensitivity to these parameters").

use sipt_core::{sipt_32k_2w, L1Policy};
use sipt_predictors::PerceptronConfig;
use sipt_sim::{Sweep, SystemKind};
use sipt_telemetry::json::Json;

fn main() {
    let cli = sipt_bench::Cli::for_artifact("ablation_perceptron_size");
    sipt_bench::header(
        "Ablation: perceptron sizing",
        "accuracy vs table entries and history length (paper default: 64 x h=12)",
    );
    let cond = cli.scale.condition();
    let variants = [
        ("64 x h12 (paper)", PerceptronConfig { entries: 64, history: 12, weight_bits: 6 }),
        ("32 x h12", PerceptronConfig { entries: 32, history: 12, weight_bits: 6 }),
        ("128 x h12", PerceptronConfig { entries: 128, history: 12, weight_bits: 6 }),
        ("64 x h6", PerceptronConfig { entries: 64, history: 6, weight_bits: 6 }),
        ("64 x h24", PerceptronConfig { entries: 64, history: 24, weight_bits: 6 }),
    ];
    println!("{:<20} {:>12} {:>12}", "config", "mean acc", "storage");
    let benches = cli.scale.benchmarks();
    let mut sweep = Sweep::new();
    for (_, pcfg) in variants {
        for &bench in &benches {
            sweep.bench(
                bench,
                sipt_32k_2w().with_policy(L1Policy::SiptBypass).with_perceptron(pcfg),
                SystemKind::OooThreeLevel,
                &cond,
            );
        }
    }
    let mut runs = sweep.run().into_iter();
    let mut json_rows = Vec::new();
    for (label, pcfg) in variants {
        let mut accs = Vec::new();
        for _ in &benches {
            let m = runs.next().expect("variant run");
            accs.push(
                (m.sipt.correct_speculation + m.sipt.correct_bypass) as f64
                    / m.sipt.accesses.max(1) as f64,
            );
        }
        let mean = accs.iter().sum::<f64>() / accs.len() as f64;
        println!("{label:<20} {:>11.1}% {:>9} B", mean * 100.0, pcfg.storage_bits() / 8);
        json_rows.push(Json::obj([
            ("config", Json::str(label)),
            ("entries", Json::u64(pcfg.entries as u64)),
            ("history", Json::u64(pcfg.history as u64)),
            ("mean_accuracy", Json::num(mean)),
            ("storage_bytes", Json::u64(pcfg.storage_bits() / 8)),
        ]));
    }
    cli.emit_json("ablation_perceptron_size", Json::obj([("rows", Json::arr(json_rows))]));
    cli.finish();
}
