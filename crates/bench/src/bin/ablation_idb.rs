//! Ablation: what the IDB adds on top of the bypass perceptron (§VI) —
//! bypass-only converts misspeculations into waits; the IDB converts them
//! into fast accesses.

use sipt_core::{sipt_32k_2w, L1Policy};
use sipt_sim::{Sweep, SystemKind};
use sipt_telemetry::json::Json;

fn main() {
    let cli = sipt_bench::Cli::for_artifact("ablation_idb");
    sipt_bench::header(
        "Ablation: IDB contribution",
        "SIPT-bypass (perceptron only) vs SIPT combined (perceptron + IDB)",
    );
    let cond = cli.scale.condition();
    println!(
        "{:<16} {:>12} {:>12} {:>12} {:>12}",
        "benchmark", "bypass fast", "comb fast", "bypass IPC", "comb IPC"
    );
    let benches = cli.scale.benchmarks();
    let mut sweep = Sweep::new();
    for &bench in &benches {
        sweep.bench(bench, sipt_core::baseline_32k_8w_vipt(), SystemKind::OooThreeLevel, &cond);
        sweep.bench(
            bench,
            sipt_32k_2w().with_policy(L1Policy::SiptBypass),
            SystemKind::OooThreeLevel,
            &cond,
        );
        sweep.bench(bench, sipt_32k_2w(), SystemKind::OooThreeLevel, &cond);
    }
    let mut runs = sweep.run().into_iter();
    let mut json_rows = Vec::new();
    for &bench in &benches {
        let base = runs.next().expect("baseline run");
        let byp = runs.next().expect("bypass run");
        let comb = runs.next().expect("combined run");
        println!(
            "{bench:<16} {:>11.1}% {:>11.1}% {:>12.3} {:>12.3}",
            byp.sipt.fast_fraction() * 100.0,
            comb.sipt.fast_fraction() * 100.0,
            byp.ipc_vs(&base),
            comb.ipc_vs(&base),
        );
        json_rows.push(Json::obj([
            ("benchmark", Json::str(bench)),
            ("bypass_fast", Json::num(byp.sipt.fast_fraction())),
            ("combined_fast", Json::num(comb.sipt.fast_fraction())),
            ("bypass_ipc", Json::num(byp.ipc_vs(&base))),
            ("combined_ipc", Json::num(comb.ipc_vs(&base))),
        ]));
    }
    cli.emit_json("ablation_idb", Json::obj([("rows", Json::arr(json_rows))]));
    cli.finish();
}
