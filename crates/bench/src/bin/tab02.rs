//! Table II: the two simulated systems and five L1 operating points.

use sipt_energy::{estimate, ArrayConfig};

fn main() {
    sipt_bench::header("Table II", "simulated system configurations");
    println!("OOO: 6-wide, 192-entry ROB, 3.0 GHz, 3-level cache; In-order: 2-wide, 2-level");
    println!("TLB: L1 64-entry 4KiB + 32-entry 2MiB (2-cycle); L2 1024-entry unified (7-cycle)");
    println!();
    println!("{:<22} {:>7} {:>12} {:>12}", "L1 config", "latency", "energy/acc", "static");
    for (name, kib, ways) in [
        ("32KiB 8-way VIPT", 32u64, 8u32),
        ("32KiB 2-way SIPT", 32, 2),
        ("32KiB 4-way SIPT", 32, 4),
        ("64KiB 4-way SIPT", 64, 4),
        ("128KiB 4-way SIPT", 128, 4),
    ] {
        let e = estimate(ArrayConfig::simple(kib << 10, ways));
        println!(
            "{:<22} {:>6}c {:>9.3} nJ {:>9.1} mW",
            name, e.latency_cycles, e.dynamic_nj, e.static_mw
        );
    }
    println!();
    println!("L2 (OOO only): 256KiB 8-way 12c, 0.13 nJ, 102 mW");
    println!("LLC: OOO 2MiB 16-way 25c (0.35 nJ, 578 mW); in-order 1MiB 16-way 20c (0.29 nJ, 532 mW)");
    println!("DRAM: 8-bank, 4-channel DDR3-like");
}
