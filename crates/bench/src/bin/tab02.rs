//! Table II: the two simulated systems and five L1 operating points.

use sipt_energy::{estimate, ArrayConfig};
use sipt_telemetry::json::Json;

fn main() {
    let cli = sipt_bench::Cli::for_artifact("tab02");
    sipt_bench::header("Table II", "simulated system configurations");
    println!("OOO: 6-wide, 192-entry ROB, 3.0 GHz, 3-level cache; In-order: 2-wide, 2-level");
    println!("TLB: L1 64-entry 4KiB + 32-entry 2MiB (2-cycle); L2 1024-entry unified (7-cycle)");
    println!();
    println!("{:<22} {:>7} {:>12} {:>12}", "L1 config", "latency", "energy/acc", "static");
    let points = [
        ("32KiB 8-way VIPT", 32u64, 8u32),
        ("32KiB 2-way SIPT", 32, 2),
        ("32KiB 4-way SIPT", 32, 4),
        ("64KiB 4-way SIPT", 64, 4),
        ("128KiB 4-way SIPT", 128, 4),
    ];
    let mut json_rows = Vec::new();
    for (name, kib, ways) in points {
        let e = estimate(ArrayConfig::simple(kib << 10, ways));
        println!(
            "{:<22} {:>6}c {:>9.3} nJ {:>9.1} mW",
            name, e.latency_cycles, e.dynamic_nj, e.static_mw
        );
        json_rows.push(Json::obj([
            ("name", Json::str(name)),
            ("kib", Json::u64(kib)),
            ("ways", Json::u64(u64::from(ways))),
            ("latency_cycles", Json::u64(e.latency_cycles)),
            ("dynamic_nj", Json::num(e.dynamic_nj)),
            ("static_mw", Json::num(e.static_mw)),
        ]));
    }
    println!();
    println!("L2 (OOO only): 256KiB 8-way 12c, 0.13 nJ, 102 mW");
    println!(
        "LLC: OOO 2MiB 16-way 25c (0.35 nJ, 578 mW); in-order 1MiB 16-way 20c (0.29 nJ, 532 mW)"
    );
    println!("DRAM: 8-bank, 4-channel DDR3-like");
    cli.emit_json("tab02", Json::obj([("l1_points", Json::arr(json_rows))]));
    cli.finish();
}
