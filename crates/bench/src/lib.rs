#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # sipt-bench — the figure/table regeneration harness
//!
//! One binary per paper artifact (run with `cargo run --release -p
//! sipt-bench --bin figNN`), plus Criterion micro-benchmarks
//! (`cargo bench`). Every binary accepts an optional scale argument:
//!
//! ```text
//! cargo run --release -p sipt-bench --bin fig13 -- quick   # seconds
//! cargo run --release -p sipt-bench --bin fig13            # default
//! cargo run --release -p sipt-bench --bin fig13 -- full    # minutes
//! ```
//!
//! | binary | regenerates |
//! |---|---|
//! | `tab01` | Table I configuration space |
//! | `fig01` | Fig 1 latency sweep |
//! | `tab02` | Table II system configurations |
//! | `fig02`, `fig03` | Figs 2–3 ideal-config IPC |
//! | `fig05` | Fig 5 speculation accuracy |
//! | `fig06` | Figs 6–7 naive SIPT |
//! | `fig09` | Fig 9 bypass outcomes |
//! | `fig12` | Fig 12 combined accuracy |
//! | `fig13` | Figs 13–14 SIPT+IDB |
//! | `tab03` | Table III mixes |
//! | `fig15` | Fig 15 quad-core |
//! | `fig16` | Figs 16–17 way prediction |
//! | `fig18` | Fig 18 sensitivity |
//! | `ablation_bypass` | perceptron vs saturating counter |
//! | `ablation_idb` | bypass-only vs combined (IDB contribution) |
//! | `ablation_perceptron_size` | table-size/history sensitivity |

pub mod harness;
pub mod inspect;

use sipt_sim::Condition;
use sipt_telemetry::json::Json;
use sipt_telemetry::report;
use std::path::PathBuf;

/// Run scale selected on the command line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Seconds: smoke benchmarks, short traces.
    Quick,
    /// The default: full benchmark roster, moderate traces.
    Default,
    /// Minutes: full roster, long traces.
    Full,
}

impl Scale {
    /// Parse from the process arguments: the first `quick` / `full`
    /// argument wins (flags like `--json` are skipped); no scale argument
    /// means the default scale.
    pub fn from_args() -> Self {
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "quick" => return Scale::Quick,
                "full" => return Scale::Full,
                _ => {}
            }
        }
        Scale::Default
    }

    /// The single-core simulation condition for this scale.
    pub fn condition(self) -> Condition {
        match self {
            Scale::Quick => Condition::quick(),
            Scale::Default => Condition::default(),
            Scale::Full => Condition {
                instructions: 1_000_000,
                warmup: 200_000,
                memory_bytes: 2 << 30,
                ..Condition::default()
            },
        }
    }

    /// The quad-core simulation condition (more memory, shorter traces —
    /// 4 cores × 5 configurations each).
    pub fn quad_condition(self) -> Condition {
        let base = self.condition();
        Condition {
            memory_bytes: 4u64 << 30,
            instructions: base.instructions / 2,
            warmup: base.warmup / 2,
            ..base
        }
    }

    /// The benchmark roster for this scale.
    pub fn benchmarks(self) -> Vec<&'static str> {
        match self {
            Scale::Quick => sipt_sim::experiments::smoke_benchmarks(),
            _ => sipt_sim::experiments::benchmark_names(),
        }
    }

    /// The mix roster for this scale.
    pub fn mixes(self) -> Vec<&'static str> {
        match self {
            Scale::Quick => vec!["mix0", "mix3", "mix8"],
            _ => sipt_sim::experiments::quadcore::all_mixes(),
        }
    }
}

/// Print a figure header with the paper reference.
pub fn header(artifact: &str, paper_summary: &str) {
    println!("== {artifact} ==");
    println!("paper: {paper_summary}");
    println!();
}

/// Parse `--jobs N` / `--jobs=N` from the process arguments. Returns
/// `None` when absent; exits with a usage message on malformed values so
/// a typo can't silently fall back to a different parallelism.
fn jobs_from_args() -> Option<usize> {
    match parse_valued_flag(std::env::args().skip(1), "--jobs") {
        Ok(v) => v.map(|n| {
            if n == 0 {
                eprintln!("invalid --jobs value \"0\": expected a positive integer");
                std::process::exit(2);
            }
            n as usize
        }),
        Err(bad) => {
            eprintln!("invalid --jobs value {bad:?}: expected a positive integer");
            std::process::exit(2);
        }
    }
}

/// Parse `--task-timeout MS` (watchdog) and `--task-retries N` (bounded
/// re-execution of panicked tasks) from the process arguments, applying
/// them to the sweep engine's process-wide knobs. Malformed values abort
/// with a usage message (exit 2).
fn resilience_flags_from_args() {
    match parse_valued_flag(std::env::args().skip(1), "--task-timeout") {
        Ok(Some(ms)) => sipt_sim::resilience::set_task_timeout_ms(ms),
        Ok(None) => {}
        Err(bad) => {
            eprintln!("invalid --task-timeout value {bad:?}: expected milliseconds");
            std::process::exit(2);
        }
    }
    match parse_valued_flag(std::env::args().skip(1), "--task-retries") {
        Ok(Some(n)) => sipt_sim::resilience::set_task_retries(n.min(16) as u32),
        Ok(None) => {}
        Err(bad) => {
            eprintln!("invalid --task-retries value {bad:?}: expected a small integer");
            std::process::exit(2);
        }
    }
}

/// Parse `--isolation thread|process` from the process arguments and
/// apply it to the sweep engine. The flag wins over `SIPT_ISOLATION`;
/// an unknown value aborts with a usage message (exit 2) rather than
/// silently running in the default mode.
fn isolation_from_args() {
    if let Some(value) = parse_string_flag(std::env::args().skip(1), "--isolation") {
        match sipt_sim::Isolation::parse(&value) {
            Some(mode) => sipt_sim::set_isolation(mode),
            None => {
                eprintln!("invalid --isolation value {value:?}: expected thread or process");
                std::process::exit(2);
            }
        }
    }
}

/// Pure parser for string-valued `--flag VALUE` / `--flag=VALUE`
/// arguments. A flag with a missing value returns the empty string so
/// the caller's validation rejects it with a usage message.
fn parse_string_flag<I: Iterator<Item = String>>(mut args: I, flag: &str) -> Option<String> {
    let prefix = format!("{flag}=");
    while let Some(arg) = args.next() {
        if arg == flag {
            return Some(args.next().unwrap_or_default());
        }
        if let Some(v) = arg.strip_prefix(&prefix) {
            return Some(v.to_owned());
        }
    }
    None
}

/// Pure parser for `--flag N` / `--flag=N` arguments, split out for
/// testing. `Err(bad)` carries the offending text.
fn parse_valued_flag<I: Iterator<Item = String>>(
    mut args: I,
    flag: &str,
) -> Result<Option<u64>, String> {
    let prefix = format!("{flag}=");
    while let Some(arg) = args.next() {
        let value = if arg == flag {
            args.next().ok_or_else(|| String::from("<missing>"))?
        } else if let Some(v) = arg.strip_prefix(&prefix) {
            v.to_owned()
        } else {
            continue;
        };
        return value.parse::<u64>().map(Some).map_err(|_| value);
    }
    Ok(None)
}

/// Command-line state shared by every figure/table binary: the run scale,
/// whether a machine-readable report was requested (`--json` argument or
/// `SIPT_JSON=1`), the sweep parallelism (`--jobs N`, `--jobs=N`, or
/// `SIPT_JOBS=N`; default: all host cores), the sweep isolation mode
/// (`--isolation thread|process` or `SIPT_ISOLATION`; `process` runs
/// sweep shards in supervised child processes that survive aborts and
/// segfaults), the resilience switches
/// (`--resume`, `--task-timeout MS`, `--task-retries N`), the
/// workload-preparation cache switch (`--no-prep-cache` or
/// `SIPT_PREP_CACHE=0`; the cache is on by default and does not change
/// payload bytes, only wall-clock), the guarded TLB-batching switch
/// (`--no-tlb-batch` or `SIPT_TLB_BATCH=0`; batching is on by default
/// and is likewise payload-invariant, only wall-clock), and host span tracing
/// (`--trace-spans` or `SIPT_TRACE_SPANS=1`; exports a Perfetto-loadable
/// `results/<name>.trace.json` without touching payload bytes).
#[derive(Debug, Clone)]
pub struct Cli {
    /// Run scale (`quick` / default / `full`).
    pub scale: Scale,
    /// Whether to write `results/<name>.json`.
    pub json: bool,
    /// Worker threads every sweep in this process will use.
    pub jobs: usize,
    /// Whether `--resume` enabled sweep checkpointing.
    pub resume: bool,
    /// Whether `--trace-spans` / `SIPT_TRACE_SPANS=1` armed host span
    /// tracing (Chrome trace-event export at [`Cli::finish`]).
    pub trace_spans: bool,
    /// The artifact name ([`Cli::for_artifact`]); names the trace file.
    artifact: Option<String>,
}

impl Cli {
    /// Parse scale, JSON switch, `--jobs`, `--isolation` and the
    /// resilience flags from the process arguments/environment. A
    /// `--jobs` argument takes precedence over `SIPT_JOBS` (likewise
    /// `--isolation` over `SIPT_ISOLATION`); malformed values abort with
    /// a usage message rather than silently running serial. Also installs
    /// the SIGTERM/SIGINT drain handlers so an interrupted sweep flushes
    /// its checkpoint and exits with resume instructions instead of dying
    /// mid-write. In `--worker-shard` re-executions (spawned by the
    /// process-isolation supervisor) the JSON report and `--resume`
    /// checkpointing are suppressed: the worker streams its results over
    /// the wire protocol and must never overwrite the parent's artifacts.
    pub fn from_args() -> Self {
        sipt_sim::install_drain_handlers();
        if let Some(jobs) = jobs_from_args() {
            sipt_sim::set_jobs(jobs);
        }
        resilience_flags_from_args();
        isolation_from_args();
        if std::env::args().skip(1).any(|a| a == "--no-prep-cache") {
            sipt_sim::prep_cache::set_enabled(false);
        }
        if std::env::args().skip(1).any(|a| a == "--no-tlb-batch") {
            sipt_sim::set_tlb_batch(false);
        }
        let worker = sipt_sim::supervisor::worker_mode();
        let trace_spans = !worker
            && (std::env::args().skip(1).any(|a| a == "--trace-spans")
                || sipt_sim::env::switch_enabled("SIPT_TRACE_SPANS"));
        if trace_spans {
            sipt_telemetry::span::set_enabled(true);
        }
        Self {
            scale: Scale::from_args(),
            json: report::json_requested() && !worker,
            jobs: sipt_sim::effective_jobs(),
            resume: !worker && std::env::args().skip(1).any(|a| a == "--resume"),
            trace_spans,
            artifact: None,
        }
    }

    /// [`Cli::from_args`] for a named artifact: additionally arms sweep
    /// checkpointing when `--resume` was passed. Completed task metrics
    /// are persisted (bit-exactly) to `results/<name>.checkpoint.json` as
    /// they finish; a re-run with `--resume` restores them instead of
    /// re-simulating, and the final report is byte-identical to an
    /// uninterrupted run. Without `--resume` nothing is written.
    pub fn for_artifact(name: &str) -> Self {
        let mut cli = Self::from_args();
        cli.artifact = Some(name.to_owned());
        if cli.resume {
            let path = report::results_dir().join(format!("{name}.checkpoint.json"));
            match sipt_sim::checkpoint::configure(&path, true) {
                Ok(ckpt) => eprintln!(
                    "resume: checkpointing to {} ({} task(s) already on file)",
                    ckpt.path().display(),
                    ckpt.restored_len()
                ),
                Err(e) => {
                    eprintln!("cannot arm --resume: {e}");
                    std::process::exit(2);
                }
            }
        }
        cli
    }

    /// When JSON was requested, wrap `payload` in the standard report
    /// envelope and write it to `results/<name>.json` (the directory is
    /// overridable with `SIPT_RESULTS_DIR`). Returns the written path, or
    /// `None` when JSON is off. Failures print to stderr rather than
    /// panicking — the text output on stdout is already complete.
    pub fn emit_json(&self, name: &str, payload: Json) -> Option<PathBuf> {
        if !self.json {
            return None;
        }
        // The envelope carries the sweep parallelism observed so far in
        // this process (absent when no parallel sweep ran, e.g.
        // tab01/tab02), the resilience block (absent when nothing failed,
        // retried, resumed or was injected), and the observability block
        // (absent unless span tracing or the flight recorder is armed).
        let envelope = report::envelope_full(
            name,
            payload,
            sipt_sim::sweep::parallelism_json(),
            sipt_sim::resilience::resilience_json(),
            sipt_sim::observability::observability_json(),
        );
        match report::write_report(&report::results_dir(), name, &envelope) {
            Ok(path) => {
                eprintln!("wrote {}", path.display());
                Some(path)
            }
            Err(e) => {
                eprintln!("failed to write {name}.json: {e}");
                None
            }
        }
    }

    /// When `--trace-spans` is armed, export everything the span sink
    /// recorded as Chrome trace-event JSON to
    /// `results/<name>.trace.json` (loadable at `ui.perfetto.dev`).
    /// Returns the written path, or `None` when tracing is off. Failures
    /// print to stderr — the trace is diagnostics, never a run blocker.
    pub fn emit_trace(&self, name: &str) -> Option<PathBuf> {
        if !self.trace_spans {
            return None;
        }
        match sipt_telemetry::span::write_trace(&report::results_dir(), name) {
            Ok(path) => {
                eprintln!("wrote {}", path.display());
                Some(path)
            }
            Err(e) => {
                eprintln!("failed to write {name}.trace.json: {e}");
                None
            }
        }
    }

    /// Final accounting, called at the end of every binary's `main` after
    /// the report is written: export the span trace (when `--trace-spans`
    /// armed one and the binary was built [`Cli::for_artifact`]), then —
    /// when any sweep task failed (organically or by injection) — print
    /// the failure table to stderr and exit 1 so automation notices; the
    /// report and text output are already complete by then, carrying
    /// placeholder metrics for the failed slots. A clean run returns
    /// normally (exit 0).
    pub fn finish(&self) {
        if let Some(name) = self.artifact.clone() {
            self.emit_trace(&name);
        }
        let failures = sipt_sim::resilience::failure_count();
        if failures > 0 {
            eprint!("{}", sipt_sim::resilience::failure_table());
            eprintln!("{failures} sweep task(s) failed; exiting non-zero");
            std::process::exit(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(v: &[&str]) -> std::vec::IntoIter<String> {
        v.iter().map(|s| (*s).to_owned()).collect::<Vec<_>>().into_iter()
    }

    #[test]
    fn jobs_argument_parses_both_forms() {
        assert_eq!(parse_valued_flag(args(&["quick", "--jobs", "4"]), "--jobs"), Ok(Some(4)));
        assert_eq!(parse_valued_flag(args(&["--jobs=2", "full"]), "--jobs"), Ok(Some(2)));
        assert_eq!(parse_valued_flag(args(&["quick", "--json"]), "--jobs"), Ok(None));
        assert_eq!(parse_valued_flag(args(&["--jobs", "zero"]), "--jobs"), Err("zero".to_owned()));
        assert_eq!(parse_valued_flag(args(&["--jobs"]), "--jobs"), Err("<missing>".to_owned()));
    }

    #[test]
    fn resilience_flags_parse_both_forms() {
        let f = "--task-timeout";
        assert_eq!(parse_valued_flag(args(&["quick", f, "5000"]), f), Ok(Some(5000)));
        assert_eq!(parse_valued_flag(args(&["--task-timeout=250"]), f), Ok(Some(250)));
        assert_eq!(parse_valued_flag(args(&["--task-retries", "3"]), "--task-retries"), {
            Ok(Some(3))
        });
        assert_eq!(parse_valued_flag(args(&["--task-timeout", "soon"]), f), Err("soon".to_owned()));
        // Flags are independent: --task-timeout does not satisfy --jobs.
        assert_eq!(parse_valued_flag(args(&["--task-timeout", "9"]), "--jobs"), Ok(None));
    }

    #[test]
    fn isolation_flag_parses_both_forms() {
        let f = "--isolation";
        assert_eq!(parse_string_flag(args(&["quick", f, "process"]), f), Some("process".into()));
        assert_eq!(parse_string_flag(args(&["--isolation=thread"]), f), Some("thread".into()));
        assert_eq!(parse_string_flag(args(&["quick", "--json"]), f), None);
        // Missing value surfaces as an empty string the validator rejects.
        assert_eq!(parse_string_flag(args(&[f]), f), Some(String::new()));
        assert!(sipt_sim::Isolation::parse("process").is_some());
        assert!(sipt_sim::Isolation::parse("container").is_none());
    }

    #[test]
    fn scales_are_ordered() {
        let q = Scale::Quick.condition();
        let d = Scale::Default.condition();
        let f = Scale::Full.condition();
        assert!(q.instructions < d.instructions);
        assert!(d.instructions < f.instructions);
        assert!(Scale::Quick.benchmarks().len() < Scale::Full.benchmarks().len());
        assert_eq!(Scale::Full.mixes().len(), 11);
        assert!(Scale::Quick.quad_condition().memory_bytes >= 4 << 30);
    }
}
