//! Isolated-kernel microbench of the per-access hot path: the packed
//! SoA cache array, the monomorphized replacement policies, the flat-slab
//! TLB, trace-cursor replay, and the full `Machine::access` — plus one
//! end-to-end fig02-style sample reporting measure-phase simulated MIPS.
//!
//! Writes `results/BENCH_hotpath.json` unconditionally (the report *is*
//! the artifact), in the same envelope style as `BENCH_sweeps.json`. Keys
//! are emitted in stable order so successive runs diff cleanly; the
//! committed copy at the repo root is the perf trajectory for the kernel.
//!
//! ```text
//! cargo bench -p sipt-bench --bench hotpath          # default scale
//! cargo bench -p sipt-bench --bench hotpath -- quick # CI smoke
//! ```

use sipt_bench::harness::Bencher;
use sipt_cache::{CacheArray, CacheGeometry, LineAddr, ReplacementKind};
use sipt_core::{sipt_32k_2w, L1Policy, SiptL1};
use sipt_cpu::{MemOp, MemRef, MemoryPath};
use sipt_mem::{
    AddressSpace, BuddyAllocator, PageSize, PhysAddr, PhysFrameNum, PlacementPolicy, Translation,
    VirtAddr, PAGE_SIZE,
};
use sipt_sim::experiments::{ideal, smoke_benchmarks};
use sipt_sim::{prep_cache, replay_trace, Condition, Machine, SystemKind};
use sipt_telemetry::json::Json;
use sipt_tlb::{DataTlb, TlbConfig};
use sipt_workloads::{benchmark, MaterializedTrace, TraceGen};

/// 32 KiB 2-way geometry — the paper's headline L1 and the shape every
/// fig02 run probes.
fn l1_geometry() -> CacheGeometry {
    CacheGeometry::new(32 << 10, 2)
}

/// The SoA array kernels: resident-probe (the per-access common case),
/// and a fill/evict cycle through the monomorphized replacement policy.
fn bench_array(b: &mut Bencher) {
    let g = l1_geometry();
    let sets = g.sets();
    for (label, kind) in [
        ("array_probe_hit_lru", ReplacementKind::Lru),
        ("array_probe_hit_plru", ReplacementKind::TreePlru),
    ] {
        let mut a = CacheArray::new(g, kind);
        // Fill every way of every set so probes always hit.
        for s in 0..sets {
            for w in 0..2u64 {
                a.fill(LineAddr(s + w * sets), false);
            }
        }
        let mut i = 0u64;
        b.bench(label, || {
            let line = LineAddr(i % (2 * sets));
            let set = a.home_set(line);
            std::hint::black_box(a.lookup(set, line));
            i += 1;
        });
    }

    // 16-way LLC shape: the wide-compare path behind the MRU-hint scalar
    // short-circuit (re-touching a set's hot line is the LLC common case).
    let g16 = CacheGeometry::new(2 << 20, 16);
    let sets16 = g16.sets();
    let mut a = CacheArray::new(g16, ReplacementKind::TreePlru);
    for s in 0..sets16 {
        for w in 0..16u64 {
            a.fill(LineAddr(s + w * sets16), false);
        }
    }
    let mut i = 0u64;
    b.bench("array_probe_hit_llc16", || {
        let line = LineAddr(i % sets16);
        let set = a.home_set(line);
        std::hint::black_box(a.lookup(set, line));
        i += 1;
    });

    let mut a = CacheArray::new(g, ReplacementKind::Lru);
    let mut i = 0u64;
    b.bench("array_fill_evict_lru", || {
        // 3 distinct lines per set: every fill past warmup evicts.
        let line = LineAddr((i % 3) * sets + (i / 3) % sets);
        std::hint::black_box(a.fill(line, i.is_multiple_of(2)));
        i += 1;
    });
}

/// The TLB kernels: L1-hit translate (the dominant case) and the L2-hit
/// fallback path.
fn bench_tlb(b: &mut Bencher) {
    let mut pt = sipt_mem::PageTable::new();
    for i in 0..512u64 {
        pt.map(sipt_mem::VirtPageNum::new(i), PhysFrameNum::new(4096 + i), PageSize::Base4K)
            .unwrap();
    }
    let mut tlb = DataTlb::new(TlbConfig::default());
    // Warm 8 pages into the 64-entry L1 so the loop below always hits L1.
    for i in 0..8u64 {
        tlb.translate(VirtAddr::new(i << sipt_mem::PAGE_SHIFT), &pt).unwrap();
    }
    let mut i = 0u64;
    b.bench("tlb_translate_l1_hit", || {
        let va = VirtAddr::new(((i % 8) << sipt_mem::PAGE_SHIFT) | 0x40);
        std::hint::black_box(tlb.translate(va, &pt).unwrap());
        i += 1;
    });

    let mut tlb = DataTlb::new(TlbConfig::default());
    // Touch 256 pages: far beyond the 64-entry L1, within the 1024-entry
    // L2, so a strided re-walk mostly hits L2.
    for i in 0..256u64 {
        tlb.translate(VirtAddr::new(i << sipt_mem::PAGE_SHIFT), &pt).unwrap();
    }
    let mut i = 0u64;
    b.bench("tlb_translate_l2_path", || {
        let va = VirtAddr::new(((i * 67) % 256) << sipt_mem::PAGE_SHIFT);
        std::hint::black_box(tlb.translate(va, &pt).unwrap());
        i += 1;
    });
}

/// Trace replay: the materialized cursor that feeds every measured
/// instruction.
fn bench_cursor(b: &mut Bencher) {
    let spec = benchmark("libquantum").unwrap();
    let mut phys = BuddyAllocator::with_bytes(1 << 30);
    let mut asp = AddressSpace::new(1, PlacementPolicy::LinuxDefault);
    let gen = TraceGen::build(&spec, &mut asp, &mut phys, 8_192, 42).unwrap();
    let trace = MaterializedTrace::from_gen(gen);
    let mut cursor = trace.cursor();
    b.bench("trace_cursor_next", || match cursor.next() {
        Some(inst) => {
            std::hint::black_box(inst);
        }
        None => cursor = trace.cursor(),
    });
}

/// The SIPT L1 front-end alone, on an always-hitting access, for the
/// no-predictor (ideal) and full combined-predictor policies.
fn bench_l1(b: &mut Bencher) {
    for (label, policy) in [
        ("l1_access_hit_ideal", L1Policy::Ideal),
        ("l1_access_hit_combined", L1Policy::SiptCombined),
    ] {
        let mut l1 = SiptL1::new(sipt_32k_2w().with_policy(policy));
        let va = VirtAddr::new(0x5000);
        let t = Translation {
            pa: PhysAddr::new(0x5000),
            pfn: PhysFrameNum::new(5),
            page_size: PageSize::Base4K,
        };
        l1.fill(LineAddr::of_phys(t.pa), false);
        let mut i = 0u64;
        b.bench(label, || {
            std::hint::black_box(l1.access(0x400100 + (i % 16) * 4, va, t, 2, false));
            i += 1;
        });
    }
}

/// The assembled machine: TLB + L1 + lower hierarchy, on a warm working
/// set (L1-TLB hit + L1-cache hit — the access the kernel rewrite is
/// aimed at).
fn bench_machine(b: &mut Bencher) -> f64 {
    let mut phys = BuddyAllocator::with_bytes(64 << 20);
    let mut asp = AddressSpace::new(0, PlacementPolicy::LinuxDefault);
    let region = asp.mmap(4 << 20, &mut phys).unwrap();
    let cfg = sipt_32k_2w().with_policy(L1Policy::Ideal);
    let mut machine = Machine::new(asp, cfg, SystemKind::OooThreeLevel);
    let mut i = 0u64;
    let r = b.bench("machine_access_l1_hit", || {
        let va = region.start + (i * 64) % (16 * PAGE_SIZE);
        i += 1;
        std::hint::black_box(machine.access(0x400100, MemRef { op: MemOp::Load, va }, i));
    });
    r.ns_per_iter
}

/// The production measure loop itself: a full materialized trace through
/// the block-replay kernel (batched translation, VPN-run coalescing,
/// monomorphized policy dispatch) on a warm machine. The derived MIPS is
/// the kernel's isolated ceiling — no preparation, no warmup split.
fn bench_block_replay(b: &mut Bencher) -> f64 {
    const INSTS: u64 = 8_192;
    let spec = benchmark("libquantum").unwrap();
    let mut phys = BuddyAllocator::with_bytes(1 << 30);
    let mut asp = AddressSpace::new(2, PlacementPolicy::LinuxDefault);
    let gen = TraceGen::build(&spec, &mut asp, &mut phys, INSTS, 42).unwrap();
    let trace = MaterializedTrace::from_gen(gen);
    let mut machine = Machine::new(asp, sipt_32k_2w(), SystemKind::OooThreeLevel);
    let r = b.bench("block_replay_8k_insts", || {
        std::hint::black_box(
            replay_trace(SystemKind::OooThreeLevel, &mut machine, &trace, "bench").unwrap(),
        );
    });
    // ns for 8192 instructions -> simulated MIPS through the kernel.
    if r.ns_per_iter > 0.0 {
        INSTS as f64 * 1e3 / r.ns_per_iter
    } else {
        0.0
    }
}

/// End-to-end: fig02-style sweeps at smoke scale, reporting the
/// measure-phase simulated MIPS (instructions retired over measured host
/// time) — the number the ≥1.5× kernel target is stated against. The
/// sweep is repeated and the fastest repetition reported: a single ~100 ms
/// sample swings ±15% with host scheduling noise, and best-of-N estimates
/// the kernel's speed rather than the host's mood.
fn fig02_sample() -> Json {
    const REPS: usize = 3;
    let mut best: Option<(f64, u64, f64, f64)> = None;
    for _ in 0..REPS {
        prep_cache::clear();
        let (instr_before, ms_before) = sipt_sim::simulation_totals();
        let t = std::time::Instant::now();
        std::hint::black_box(ideal::fig2(&smoke_benchmarks(), &Condition::quick()));
        let wall_ms = t.elapsed().as_secs_f64() * 1e3;
        let (instr_after, ms_after) = sipt_sim::simulation_totals();
        let instructions = instr_after - instr_before;
        let measure_ms = ms_after - ms_before;
        let mips = if measure_ms > 0.0 { instructions as f64 / (measure_ms * 1e3) } else { 0.0 };
        if best.is_none_or(|(m, ..)| mips > m) {
            best = Some((mips, instructions, measure_ms, wall_ms));
        }
    }
    let (mips, instructions, measure_ms, wall_ms) = best.expect("REPS > 0");
    println!(
        "{:<40} {wall_ms:>9.1} ms wall  {mips:>8.2} MIPS (measure phase, best of {REPS})",
        "fig02_smoke_end_to_end"
    );
    Json::obj([
        ("name", Json::str("fig02_smoke_end_to_end")),
        ("wall_ms", Json::num(wall_ms)),
        ("simulated_instructions", Json::u64(instructions)),
        ("measure_ms", Json::num(measure_ms)),
        ("simulated_mips", Json::num(mips)),
    ])
}

fn main() {
    let cli = sipt_bench::Cli::from_args();
    let mut b =
        if cli.scale == sipt_bench::Scale::Quick { Bencher::quick() } else { Bencher::default() };
    println!("BENCH_hotpath: isolated per-access kernels");
    println!();
    bench_array(&mut b);
    bench_tlb(&mut b);
    bench_cursor(&mut b);
    bench_l1(&mut b);
    let machine_ns = bench_machine(&mut b);
    let block_replay_mips = bench_block_replay(&mut b);
    let fig02 = fig02_sample();

    // One derived, CI-assertable headline: sustained accesses/sec through
    // the full machine path (must be > 0; non-flaky by construction).
    let accesses_per_sec = if machine_ns > 0.0 { 1e9 / machine_ns } else { 0.0 };

    let payload = Json::obj([
        ("accesses_per_sec", Json::num(accesses_per_sec)),
        ("benchmarks", b.to_json()),
        ("block_replay_mips", Json::num(block_replay_mips)),
        ("fig02", fig02),
    ]);
    let envelope = sipt_telemetry::report::envelope("BENCH_hotpath", payload);
    let dir = sipt_telemetry::report::results_dir();
    match sipt_telemetry::report::write_report(&dir, "BENCH_hotpath", &envelope) {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(e) => {
            eprintln!("failed to write BENCH_hotpath.json: {e}");
            std::process::exit(1);
        }
    }
    cli.finish();
}
