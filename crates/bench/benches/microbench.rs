//! Criterion micro-benchmarks of the hot simulator structures: buddy
//! allocation, predictor lookups, and the full per-access machine path.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use sipt_core::{sipt_32k_2w, SiptL1};
use sipt_cpu::{MemOp, MemRef, MemoryPath};
use sipt_mem::{
    AddressSpace, BuddyAllocator, PageSize, PhysAddr, PhysFrameNum, PlacementPolicy,
    Translation, VirtAddr, PAGE_SIZE,
};
use sipt_predictors::{IdbConfig, IndexDeltaBuffer, PerceptronConfig, PerceptronPredictor};
use sipt_sim::{Machine, SystemKind};

fn bench_buddy(c: &mut Criterion) {
    c.bench_function("buddy_alloc_free_order0", |b| {
        b.iter_batched_ref(
            || BuddyAllocator::new(1 << 16),
            |buddy| {
                for _ in 0..64 {
                    let blk = buddy.alloc(0).unwrap();
                    buddy.free(blk);
                }
            },
            BatchSize::SmallInput,
        )
    });
    c.bench_function("buddy_bulk_alloc_512", |b| {
        b.iter_batched_ref(
            || BuddyAllocator::new(1 << 16),
            |buddy| {
                let blocks = buddy.alloc_bulk(512).unwrap();
                for blk in blocks {
                    buddy.free(blk);
                }
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_predictors(c: &mut Criterion) {
    c.bench_function("perceptron_predict_update", |b| {
        let mut p = PerceptronPredictor::new(PerceptronConfig::default());
        let mut i = 0u64;
        b.iter(|| {
            let pc = 0x400000 + (i % 64) * 8;
            let out = p.predict(pc);
            p.update(pc, out ^ i.is_multiple_of(7));
            i += 1;
        })
    });
    c.bench_function("idb_predict_update", |b| {
        let mut idb = IndexDeltaBuffer::new(IdbConfig { entries: 64, bits: 3 });
        let mut i = 0u64;
        b.iter(|| {
            let pc = 0x400000 + (i % 64) * 8;
            let d = idb.predict(pc);
            idb.update(pc, d + i % 3);
            i += 1;
        })
    });
}

fn bench_l1_access(c: &mut Criterion) {
    c.bench_function("sipt_l1_access_hit", |b| {
        let mut l1 = SiptL1::new(sipt_32k_2w());
        let va = VirtAddr::new(0x5000);
        let t = Translation {
            pa: PhysAddr::new(0x5000),
            pfn: PhysFrameNum::new(5),
            page_size: PageSize::Base4K,
        };
        l1.fill(sipt_cache::LineAddr::of_phys(t.pa), false);
        b.iter(|| l1.access(0x400100, va, t, 2, false))
    });
}

fn bench_machine(c: &mut Criterion) {
    c.bench_function("machine_access_warm", |b| {
        let mut phys = BuddyAllocator::with_bytes(64 << 20);
        let mut asp = AddressSpace::new(0, PlacementPolicy::LinuxDefault);
        let region = asp.mmap(4 << 20, &mut phys).unwrap();
        let mut machine = Machine::new(asp, sipt_32k_2w(), SystemKind::OooThreeLevel);
        let mut i = 0u64;
        b.iter(|| {
            let va = region.start + (i * 64) % (16 * PAGE_SIZE);
            i += 1;
            machine.access(0x400100, MemRef { op: MemOp::Load, va }, i)
        })
    });
}

criterion_group!(
    benches,
    bench_buddy,
    bench_predictors,
    bench_l1_access,
    bench_machine
);
criterion_main!(benches);
