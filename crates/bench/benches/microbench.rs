//! Micro-benchmarks of the hot simulator structures: buddy allocation,
//! predictor lookups, and the full per-access machine path.
//!
//! Runs on the in-tree harness (`sipt_bench::harness`) so the build stays
//! offline. Invoke with `cargo bench -p sipt-bench --bench microbench`;
//! pass `quick` for a smoke run, `--json` (or `SIPT_JSON=1`) to write
//! `results/microbench.json`.

use sipt_bench::harness::Bencher;
use sipt_core::{sipt_32k_2w, SiptL1};
use sipt_cpu::{MemOp, MemRef, MemoryPath};
use sipt_mem::{
    AddressSpace, BuddyAllocator, PageSize, PhysAddr, PhysFrameNum, PlacementPolicy, Translation,
    VirtAddr, PAGE_SIZE,
};
use sipt_predictors::{IdbConfig, IndexDeltaBuffer, PerceptronConfig, PerceptronPredictor};
use sipt_sim::{Machine, SystemKind};

fn bench_buddy(b: &mut Bencher) {
    let mut buddy = BuddyAllocator::new(1 << 16);
    b.bench("buddy_alloc_free_order0", || {
        for _ in 0..64 {
            let blk = buddy.alloc(0).unwrap();
            buddy.free(blk);
        }
    });
    let mut buddy = BuddyAllocator::new(1 << 16);
    b.bench("buddy_bulk_alloc_512", || {
        let blocks = buddy.alloc_bulk(512).unwrap();
        for blk in blocks {
            buddy.free(blk);
        }
    });
}

fn bench_predictors(b: &mut Bencher) {
    let mut p = PerceptronPredictor::new(PerceptronConfig::default());
    let mut i = 0u64;
    b.bench("perceptron_predict_update", || {
        let pc = 0x400000 + (i % 64) * 8;
        let out = p.predict(pc);
        p.update(pc, out ^ i.is_multiple_of(7));
        i += 1;
    });
    let mut idb = IndexDeltaBuffer::new(IdbConfig { entries: 64, bits: 3 });
    let mut i = 0u64;
    b.bench("idb_predict_update", || {
        let pc = 0x400000 + (i % 64) * 8;
        let d = idb.predict(pc);
        idb.update(pc, d + i % 3);
        i += 1;
    });
}

fn bench_l1_access(b: &mut Bencher) {
    let mut l1 = SiptL1::new(sipt_32k_2w());
    let va = VirtAddr::new(0x5000);
    let t = Translation {
        pa: PhysAddr::new(0x5000),
        pfn: PhysFrameNum::new(5),
        page_size: PageSize::Base4K,
    };
    l1.fill(sipt_cache::LineAddr::of_phys(t.pa), false);
    b.bench("sipt_l1_access_hit", || {
        std::hint::black_box(l1.access(0x400100, va, t, 2, false));
    });
}

fn bench_machine(b: &mut Bencher) {
    let mut phys = BuddyAllocator::with_bytes(64 << 20);
    let mut asp = AddressSpace::new(0, PlacementPolicy::LinuxDefault);
    let region = asp.mmap(4 << 20, &mut phys).unwrap();
    let mut machine = Machine::new(asp, sipt_32k_2w(), SystemKind::OooThreeLevel);
    let mut i = 0u64;
    b.bench("machine_access_warm", || {
        let va = region.start + (i * 64) % (16 * PAGE_SIZE);
        i += 1;
        std::hint::black_box(machine.access(0x400100, MemRef { op: MemOp::Load, va }, i));
    });
}

fn main() {
    let cli = sipt_bench::Cli::from_args();
    let mut b =
        if cli.scale == sipt_bench::Scale::Quick { Bencher::quick() } else { Bencher::default() };
    bench_buddy(&mut b);
    bench_predictors(&mut b);
    bench_l1_access(&mut b);
    bench_machine(&mut b);
    cli.emit_json(
        "microbench",
        sipt_telemetry::json::Json::obj([
            ("artifact", sipt_telemetry::json::Json::str("microbench")),
            ("benchmarks", b.to_json()),
        ]),
    );
}
