//! Wall-clock wrappers around every figure driver at smoke scale: tracks
//! the end-to-end cost of regenerating each paper artifact and guards
//! against simulator performance regressions.
//!
//! Runs on the in-tree harness (`sipt_bench::harness`) so the build stays
//! offline. Invoke with `cargo bench -p sipt-bench --bench figures`; pass
//! `--json` (or `SIPT_JSON=1`) to write `results/figures-bench.json`.

use sipt_bench::harness::Bencher;
use sipt_sim::experiments::{
    bypass, combined, fig01, ideal, naive, quadcore, sensitivity, speculation, waypred,
};
use sipt_sim::Condition;

fn smoke() -> Vec<&'static str> {
    vec!["libquantum", "calculix"]
}

fn tiny() -> Condition {
    Condition { instructions: 8_000, warmup: 2_000, ..Condition::default() }
}

fn main() {
    let cli = sipt_bench::Cli::from_args();
    // Figure drivers are heavyweight; one calibrated iteration is enough.
    let mut b = Bencher::new(1, 1);

    b.bench("fig01_latency_model", || {
        std::hint::black_box(fig01::run());
    });
    b.bench("fig02_ideal_ooo", || {
        std::hint::black_box(ideal::fig2(&smoke(), &tiny()));
    });
    b.bench("fig03_ideal_inorder", || {
        std::hint::black_box(ideal::fig3(&smoke(), &tiny()));
    });
    b.bench("fig05_speculation_profile", || {
        std::hint::black_box(speculation::fig5(&smoke(), &tiny()));
    });
    b.bench("fig06_07_naive_sipt", || {
        std::hint::black_box(naive::fig6_fig7(&smoke(), &tiny()));
    });
    b.bench("fig09_bypass_outcomes", || {
        std::hint::black_box(bypass::fig9(&smoke(), &tiny()));
    });
    b.bench("fig12_combined_accuracy", || {
        std::hint::black_box(combined::fig12(&smoke(), &tiny()));
    });
    b.bench("fig13_14_sipt_idb", || {
        std::hint::black_box(combined::fig13_fig14(&smoke(), &tiny()));
    });
    b.bench("fig15_quadcore_mix0", || {
        std::hint::black_box(quadcore::fig15(
            &["mix0"],
            &Condition { memory_bytes: 4 << 30, ..tiny() },
        ));
    });
    b.bench("fig16_17_way_prediction", || {
        std::hint::black_box(waypred::fig16_fig17(&smoke(), &tiny()));
    });
    b.bench("fig18_sensitivity", || {
        std::hint::black_box(sensitivity::fig18(&["libquantum"], &tiny()));
    });

    cli.emit_json(
        "figures-bench",
        sipt_telemetry::json::Json::obj([
            ("artifact", sipt_telemetry::json::Json::str("figures-bench")),
            ("benchmarks", b.to_json()),
        ]),
    );
}
