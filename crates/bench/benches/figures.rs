//! Criterion wrappers around every figure driver at smoke scale: tracks
//! the end-to-end cost of regenerating each paper artifact and guards
//! against simulator performance regressions.

use criterion::{criterion_group, criterion_main, Criterion};
use sipt_sim::experiments::{
    bypass, combined, fig01, ideal, naive, quadcore, sensitivity, speculation, waypred,
};
use sipt_sim::Condition;

fn smoke() -> Vec<&'static str> {
    vec!["libquantum", "calculix"]
}

fn tiny() -> Condition {
    Condition { instructions: 8_000, warmup: 2_000, ..Condition::default() }
}

fn bench_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);

    group.bench_function("fig01_latency_model", |b| b.iter(fig01::run));
    group.bench_function("fig02_ideal_ooo", |b| {
        b.iter(|| ideal::fig2(&smoke(), &tiny()))
    });
    group.bench_function("fig03_ideal_inorder", |b| {
        b.iter(|| ideal::fig3(&smoke(), &tiny()))
    });
    group.bench_function("fig05_speculation_profile", |b| {
        b.iter(|| speculation::fig5(&smoke(), &tiny()))
    });
    group.bench_function("fig06_07_naive_sipt", |b| {
        b.iter(|| naive::fig6_fig7(&smoke(), &tiny()))
    });
    group.bench_function("fig09_bypass_outcomes", |b| {
        b.iter(|| bypass::fig9(&smoke(), &tiny()))
    });
    group.bench_function("fig12_combined_accuracy", |b| {
        b.iter(|| combined::fig12(&smoke(), &tiny()))
    });
    group.bench_function("fig13_14_sipt_idb", |b| {
        b.iter(|| combined::fig13_fig14(&smoke(), &tiny()))
    });
    group.bench_function("fig15_quadcore_mix0", |b| {
        b.iter(|| {
            quadcore::fig15(
                &["mix0"],
                &Condition { memory_bytes: 4 << 30, ..tiny() },
            )
        })
    });
    group.bench_function("fig16_17_way_prediction", |b| {
        b.iter(|| waypred::fig16_fig17(&smoke(), &tiny()))
    });
    group.bench_function("fig18_sensitivity", |b| {
        b.iter(|| sensitivity::fig18(&["libquantum"], &tiny()))
    });
    group.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
