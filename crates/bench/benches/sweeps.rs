//! Sweep perf baseline: runs every figure driver once at smoke scale and
//! writes `results/BENCH_sweeps.json` — per-artifact wall-clock, true
//! simulated MIPS (instructions retired over measured host time, from
//! [`sipt_sim::simulation_totals`]), and the workload-preparation cache
//! hit rate. This file is the perf trajectory: keep the sample names
//! stable so successive runs diff cleanly.
//!
//! ```text
//! cargo bench -p sipt-bench --bench sweeps             # cache on (default)
//! cargo bench -p sipt-bench --bench sweeps -- --no-prep-cache
//! ```
//!
//! The JSON is written unconditionally (the report *is* the artifact);
//! `--json` additionally has no extra effect here. Wall-clock numbers are
//! host-dependent by nature; the scientific payloads these drivers
//! produce are unaffected by the cache (see
//! `tests/prep_cache_determinism.rs`).

use sipt_sim::experiments::{
    bypass, combined, fig01, ideal, naive, quadcore, sensitivity, speculation, waypred,
};
use sipt_sim::{prep_cache, Condition};
use sipt_telemetry::json::Json;
use sipt_telemetry::report;
use std::time::Instant;

fn smoke() -> Vec<&'static str> {
    vec!["libquantum", "calculix"]
}

fn tiny() -> Condition {
    Condition { instructions: 8_000, warmup: 2_000, ..Condition::default() }
}

/// Run one driver, sampling wall-clock, simulation totals and prep-cache
/// counters around it, and append the sample as a JSON row.
fn measure(samples: &mut Vec<Json>, name: &str, f: impl FnOnce()) {
    let cache_before = prep_cache::stats();
    let (instr_before, measure_ms_before) = sipt_sim::simulation_totals();
    let t = Instant::now();
    f();
    let wall_ms = t.elapsed().as_secs_f64() * 1e3;
    let (instr_after, measure_ms_after) = sipt_sim::simulation_totals();
    let cache_after = prep_cache::stats();

    let instructions = instr_after - instr_before;
    let measure_ms = measure_ms_after - measure_ms_before;
    let simulated_mips =
        if measure_ms > 0.0 { instructions as f64 / (measure_ms * 1e3) } else { 0.0 };
    let hits = cache_after.hits - cache_before.hits;
    let misses = cache_after.misses - cache_before.misses;
    let lookups = hits + misses;
    let hit_rate = if lookups > 0 { hits as f64 / lookups as f64 } else { 0.0 };

    println!(
        "{name:<28} {wall_ms:>9.1} ms  {simulated_mips:>8.2} MIPS  prep-cache {hits}/{lookups} hits"
    );
    samples.push(Json::obj([
        ("name", Json::str(name)),
        ("wall_ms", Json::num(wall_ms)),
        ("simulated_instructions", Json::u64(instructions)),
        ("simulated_mips", Json::num(simulated_mips)),
        ("prep_cache_hits", Json::u64(hits)),
        ("prep_cache_misses", Json::u64(misses)),
        ("prep_cache_hit_rate", Json::num(hit_rate)),
    ]));
}

fn main() {
    let cli = sipt_bench::Cli::from_args();
    println!(
        "BENCH_sweeps: smoke-scale figure drivers (prep cache {})",
        if prep_cache::stats().enabled { "on" } else { "off" }
    );
    println!();

    let mut samples = Vec::new();
    measure(&mut samples, "fig01_latency_model", || {
        std::hint::black_box(fig01::run());
    });
    measure(&mut samples, "fig02_ideal_ooo", || {
        std::hint::black_box(ideal::fig2(&smoke(), &tiny()));
    });
    measure(&mut samples, "fig03_ideal_inorder", || {
        std::hint::black_box(ideal::fig3(&smoke(), &tiny()));
    });
    measure(&mut samples, "fig05_speculation_profile", || {
        std::hint::black_box(speculation::fig5(&smoke(), &tiny()));
    });
    measure(&mut samples, "fig06_07_naive_sipt", || {
        std::hint::black_box(naive::fig6_fig7(&smoke(), &tiny()));
    });
    measure(&mut samples, "fig09_bypass_outcomes", || {
        std::hint::black_box(bypass::fig9(&smoke(), &tiny()));
    });
    measure(&mut samples, "fig12_combined_accuracy", || {
        std::hint::black_box(combined::fig12(&smoke(), &tiny()));
    });
    measure(&mut samples, "fig13_14_sipt_idb", || {
        std::hint::black_box(combined::fig13_fig14(&smoke(), &tiny()));
    });
    measure(&mut samples, "fig15_quadcore_mix0", || {
        std::hint::black_box(quadcore::fig15(
            &["mix0"],
            &Condition { memory_bytes: 4 << 30, ..tiny() },
        ));
    });
    measure(&mut samples, "fig16_17_way_prediction", || {
        std::hint::black_box(waypred::fig16_fig17(&smoke(), &tiny()));
    });
    measure(&mut samples, "fig18_sensitivity", || {
        std::hint::black_box(sensitivity::fig18(&["libquantum"], &tiny()));
    });

    let (total_instr, total_measure_ms) = sipt_sim::simulation_totals();
    let payload = Json::obj([
        ("samples", Json::arr(samples)),
        ("prep_cache", prep_cache::stats_json()),
        (
            "totals",
            Json::obj([
                ("simulated_instructions", Json::u64(total_instr)),
                ("measure_ms", Json::num(total_measure_ms)),
                (
                    "simulated_mips",
                    Json::num(if total_measure_ms > 0.0 {
                        total_instr as f64 / (total_measure_ms * 1e3)
                    } else {
                        0.0
                    }),
                ),
            ]),
        ),
    ]);
    let envelope = report::envelope_full(
        "BENCH_sweeps",
        payload,
        sipt_sim::sweep::parallelism_json(),
        sipt_sim::resilience::resilience_json(),
        sipt_sim::observability::observability_json(),
    );
    match report::write_report(&report::results_dir(), "BENCH_sweeps", &envelope) {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(e) => {
            eprintln!("failed to write BENCH_sweeps.json: {e}");
            std::process::exit(1);
        }
    }
    cli.finish();
}
