//! DRAM model properties: every access resolves to one of the three
//! row-buffer outcomes plus queueing, and bank state stays consistent.

use proptest::prelude::*;
use sipt_cache::{LineAddr, MemoryBackend};
use sipt_dram::{Dram, DramConfig};

proptest! {
    #[test]
    fn latency_bounded_and_outcomes_partition(
        accesses in proptest::collection::vec((0u64..1u64<<24, any::<bool>(), 0u64..100), 1..500)
    ) {
        let cfg = DramConfig::default();
        let mut dram = Dram::new(cfg);
        let mut now = 0u64;
        for (line, write, gap) in accesses {
            now += gap;
            let lat = dram.access(LineAddr(line), write, now);
            prop_assert!(lat >= cfg.row_hit_latency, "latency {lat} below floor");
            prop_assert!(lat <= cfg.row_conflict_latency + 10_000, "runaway queueing: {lat}");
        }
        let s = dram.stats();
        prop_assert_eq!(s.row_hits + s.row_closed + s.row_conflicts, s.total());
    }

    /// Serving the same line twice (idle bank) is always a row hit the
    /// second time.
    #[test]
    fn repeat_access_hits_row(line in 0u64..1u64<<20) {
        let cfg = DramConfig::default();
        let mut dram = Dram::new(cfg);
        dram.access(LineAddr(line), false, 0);
        let lat = dram.access(LineAddr(line), false, 1_000_000);
        prop_assert_eq!(lat, cfg.row_hit_latency);
    }
}

#[test]
fn closed_banks_count_once_each() {
    let cfg = DramConfig::default();
    let mut dram = Dram::new(cfg);
    let banks = (cfg.channels * cfg.banks_per_channel) as u64;
    // One access per bank: stride by a full row (column bits are lowest
    // in the open-page mapping, channel/bank bits sit above them).
    let lines_per_row = cfg.row_bytes / 64;
    for i in 0..banks {
        dram.access(LineAddr(i * lines_per_row), false, i * 1000);
    }
    assert_eq!(dram.stats().row_closed, banks);
    assert_eq!(dram.stats().row_hits, 0);
}
