#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # sipt-dram — DDR3-style main-memory timing model
//!
//! Replaces the paper's DRAMSim2 backend with a first-order bank/row-buffer
//! model: addresses use the open-page `row:bank:channel:column` layout
//! (row-offset bits lowest, so contiguous extents fill one bank's row
//! before moving to the next channel), each bank keeps one open row, and
//! an access costs a row *hit*, *closed* (empty row buffer) or *conflict*
//! (precharge + activate) latency plus any queueing delay while the bank
//! is busy. Defaults model the paper's "8-bank, 4-channel DDR3, 16 GiB"
//! at a 3 GHz core clock.
//!
//! ```
//! use sipt_dram::{Dram, DramConfig};
//! use sipt_cache::{LineAddr, MemoryBackend};
//!
//! let mut dram = Dram::new(DramConfig::default());
//! let first = dram.access(LineAddr(0), false, 0);
//! // Line 32 is still inside the same 8 KiB row (128 lines per row):
//! let second = dram.access(LineAddr(32), false, 1000);
//! assert!(second < first, "row-buffer hit must be faster");
//! ```

use sipt_cache::{LineAddr, MemoryBackend};

/// DDR3-like configuration. All latencies are in *core* cycles (3 GHz), so
/// they can be added directly to pipeline timing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramConfig {
    /// Number of channels (paper: 4).
    pub channels: u32,
    /// Banks per channel (paper: 8).
    pub banks_per_channel: u32,
    /// Row-buffer size in bytes (8 KiB typical for DDR3 x8 devices).
    pub row_bytes: u64,
    /// Latency of a row-buffer hit (CAS + transfer + controller).
    pub row_hit_latency: u64,
    /// Latency when the bank's row buffer is closed (activate + CAS).
    pub row_closed_latency: u64,
    /// Latency of a row conflict (precharge + activate + CAS).
    pub row_conflict_latency: u64,
    /// Cycles a bank stays busy after starting an access (command +
    /// data occupancy; limits bank-level parallelism).
    pub bank_occupancy: u64,
}

impl Default for DramConfig {
    fn default() -> Self {
        // DDR3-1600 at a 3 GHz core: tCAS ≈ tRCD ≈ tRP ≈ 13.75 ns ≈ 41
        // cycles each; plus transfer and controller overhead.
        Self {
            channels: 4,
            banks_per_channel: 8,
            row_bytes: 8 << 10,
            row_hit_latency: 60,
            row_closed_latency: 100,
            row_conflict_latency: 140,
            bank_occupancy: 24,
        }
    }
}

/// Row-buffer outcome of one access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RowOutcome {
    /// The addressed row was already open.
    Hit,
    /// The bank's row buffer was empty.
    Closed,
    /// A different row was open and had to be precharged.
    Conflict,
}

/// DRAM statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DramStats {
    /// Read accesses.
    pub reads: u64,
    /// Write accesses (including writebacks).
    pub writes: u64,
    /// Row-buffer hits.
    pub row_hits: u64,
    /// Accesses to an idle (closed) bank.
    pub row_closed: u64,
    /// Row-buffer conflicts.
    pub row_conflicts: u64,
    /// Total cycles spent queueing behind busy banks.
    pub queue_cycles: u64,
}

impl DramStats {
    /// Total accesses.
    pub fn total(&self) -> u64 {
        self.reads + self.writes
    }

    /// Row-buffer hit rate.
    pub fn row_hit_rate(&self) -> f64 {
        if self.total() == 0 {
            return 0.0;
        }
        self.row_hits as f64 / self.total() as f64
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Bank {
    open_row: Option<u64>,
    busy_until: u64,
}

/// The DRAM device array: `channels × banks` banks, each with one open row.
#[derive(Debug, Clone)]
pub struct Dram {
    config: DramConfig,
    banks: Vec<Bank>,
    stats: DramStats,
}

impl Dram {
    /// Create a DRAM model with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics unless channel/bank counts and the row size are powers of
    /// two (required by the bit-sliced address mapping).
    pub fn new(config: DramConfig) -> Self {
        assert!(config.channels.is_power_of_two(), "channels must be a power of two");
        assert!(config.banks_per_channel.is_power_of_two(), "banks must be a power of two");
        assert!(config.row_bytes.is_power_of_two(), "row size must be a power of two");
        Self {
            banks: vec![Bank::default(); (config.channels * config.banks_per_channel) as usize],
            config,
            stats: DramStats::default(),
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &DramConfig {
        &self.config
    }

    /// Map a line address to `(flat bank index, row)` with the classic
    /// open-page (`row:bank:channel:column`) layout: the row-offset
    /// (column) bits are the *lowest* line-address bits, so a contiguous
    /// physical extent stays inside one bank's open row for a full
    /// `row_bytes`; channel and bank bits sit above it, interleaving
    /// consecutive rows across channels, then banks. This is what lets
    /// streaming access patterns harvest row-buffer hits — a
    /// channel-bits-lowest mapping would scatter sequential lines across
    /// every bank and destroy row locality for streams.
    fn map(&self, line: LineAddr) -> (usize, u64) {
        let ch_bits = self.config.channels.trailing_zeros();
        let bank_bits = self.config.banks_per_channel.trailing_zeros();
        let lines_per_row = self.config.row_bytes / sipt_cache::LINE_SIZE;
        let col_bits = lines_per_row.trailing_zeros();

        let addr = line.0;
        let channel = (addr >> col_bits) & (self.config.channels as u64 - 1);
        let bank = (addr >> (col_bits + ch_bits)) & (self.config.banks_per_channel as u64 - 1);
        let row = addr >> (col_bits + ch_bits + bank_bits);
        ((channel * self.config.banks_per_channel as u64 + bank) as usize, row)
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> DramStats {
        self.stats
    }

    /// Reset statistics (bank state kept).
    pub fn reset_stats(&mut self) {
        self.stats = DramStats::default();
    }
}

impl MemoryBackend for Dram {
    fn access(&mut self, line: LineAddr, write: bool, now: u64) -> u64 {
        if write {
            self.stats.writes += 1;
        } else {
            self.stats.reads += 1;
        }
        let (bank_idx, row) = self.map(line);
        let bank = &mut self.banks[bank_idx];

        // Queue behind the bank if it is still busy.
        let queue = bank.busy_until.saturating_sub(now);
        self.stats.queue_cycles += queue;
        let start = now + queue;

        let (outcome, latency) = match bank.open_row {
            Some(open) if open == row => (RowOutcome::Hit, self.config.row_hit_latency),
            Some(_) => (RowOutcome::Conflict, self.config.row_conflict_latency),
            None => (RowOutcome::Closed, self.config.row_closed_latency),
        };
        match outcome {
            RowOutcome::Hit => self.stats.row_hits += 1,
            RowOutcome::Closed => self.stats.row_closed += 1,
            RowOutcome::Conflict => self.stats.row_conflicts += 1,
        }
        bank.open_row = Some(row);
        bank.busy_until = start + self.config.bank_occupancy;
        queue + latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dram() -> Dram {
        Dram::new(DramConfig::default())
    }

    #[test]
    fn first_access_is_closed_then_row_hits() {
        let mut d = dram();
        let cfg = *d.config();
        assert_eq!(d.access(LineAddr(0), false, 0), cfg.row_closed_latency);
        // A nearby line in the same row (column bits are lowest). Issue
        // late enough that the bank is idle.
        let same_row = LineAddr((cfg.channels * cfg.banks_per_channel) as u64);
        assert_eq!(d.access(same_row, false, 10_000), cfg.row_hit_latency);
        assert_eq!(d.stats().row_hits, 1);
        assert_eq!(d.stats().row_closed, 1);
    }

    #[test]
    fn different_row_same_bank_conflicts() {
        let mut d = dram();
        let cfg = *d.config();
        d.access(LineAddr(0), false, 0);
        // Same bank, different row: step over the full channel × bank
        // interleave (one row's worth of lines per bank in between).
        let lines_per_row = cfg.row_bytes / 64;
        let far = LineAddr(lines_per_row * (cfg.channels * cfg.banks_per_channel) as u64);
        assert_eq!(d.access(far, false, 10_000), cfg.row_conflict_latency);
        assert_eq!(d.stats().row_conflicts, 1);
    }

    #[test]
    fn consecutive_rows_spread_over_channels() {
        let d = dram();
        let cfg = *d.config();
        let lines_per_row = cfg.row_bytes / 64;
        // Consecutive lines share a bank (open-page mapping) …
        let mut same = std::collections::HashSet::new();
        for i in 0..4u64 {
            same.insert(d.map(LineAddr(i)).0);
        }
        assert_eq!(same.len(), 1, "lines within one row must share a bank");
        // … while consecutive *rows* interleave across channels, then
        // banks: 32 successive rows cover all 4×8 banks exactly once.
        let mut banks = std::collections::HashSet::new();
        for i in 0..(cfg.channels * cfg.banks_per_channel) as u64 {
            banks.insert(d.map(LineAddr(i * lines_per_row)).0);
        }
        assert_eq!(banks.len(), 32, "row-stride sweep must visit every bank");
    }

    #[test]
    fn busy_bank_adds_queueing_delay() {
        let mut d = dram();
        let cfg = *d.config();
        d.access(LineAddr(0), false, 0);
        // Immediately hit the same bank again: must wait out occupancy.
        let lat = d.access(LineAddr((cfg.channels * cfg.banks_per_channel) as u64), false, 0);
        assert_eq!(lat, cfg.bank_occupancy + cfg.row_hit_latency);
        assert_eq!(d.stats().queue_cycles, cfg.bank_occupancy);
    }

    #[test]
    fn independent_banks_do_not_queue() {
        let mut d = dram();
        let cfg = *d.config();
        d.access(LineAddr(0), false, 0);
        // Different channel (one row-stride away): no queueing even at
        // the same instant.
        let lat = d.access(LineAddr(cfg.row_bytes / 64), false, 0);
        assert_eq!(lat, cfg.row_closed_latency);
        assert_eq!(d.stats().queue_cycles, 0);
    }

    #[test]
    fn stats_and_hit_rate() {
        let mut d = dram();
        assert_eq!(d.stats().row_hit_rate(), 0.0);
        d.access(LineAddr(0), false, 0);
        d.access(LineAddr(32), true, 10_000); // same bank+row (line 32 < 128-line row)
        let s = d.stats();
        assert_eq!(s.reads, 1);
        assert_eq!(s.writes, 1);
        assert_eq!(s.row_hit_rate(), 0.5);
        d.reset_stats();
        assert_eq!(d.stats().total(), 0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_config_panics() {
        let _ = Dram::new(DramConfig { channels: 3, ..DramConfig::default() });
    }

    #[test]
    fn streaming_is_mostly_row_hits() {
        // A sequential sweep should enjoy a high row-buffer hit rate — the
        // property that makes streaming workloads DRAM-friendly.
        let mut d = dram();
        let mut now = 0;
        for i in 0..4096u64 {
            now += d.access(LineAddr(i), false, now) + 1;
        }
        assert!(d.stats().row_hit_rate() > 0.9, "rate = {}", d.stats().row_hit_rate());
    }
}
