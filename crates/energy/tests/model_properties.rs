//! Properties of the CACTI-like model and energy accounting.

use proptest::prelude::*;
use sipt_energy::*;

proptest! {
    /// Latency and energy are positive and finite over the whole sweep
    /// space, and more ports never make an array faster.
    #[test]
    fn estimates_are_sane(cap_log in 14u32..18, ways_log in 1u32..6, banks_log in 0u32..3) {
        let capacity = 1u64 << cap_log;
        let ways = 1u32 << ways_log;
        let one = estimate(ArrayConfig { capacity, ways, read_ports: 1, banks: 1 << banks_log });
        let two = estimate(ArrayConfig { capacity, ways, read_ports: 2, banks: 1 << banks_log });
        for e in [one, two] {
            prop_assert!(e.access_ns.is_finite() && e.access_ns > 0.0);
            prop_assert!(e.latency_cycles >= 1);
            prop_assert!(e.dynamic_nj > 0.0);
            prop_assert!(e.static_mw > 0.0);
        }
        // Port monotonicity holds within the analytic fit; the Table II
        // calibration points (returned verbatim) sit slightly off it, so
        // skip the pairs whose 1-port member is calibrated.
        let calibrated = [(32u64, 8u32), (32, 2), (32, 4), (64, 4), (128, 4)]
            .contains(&(capacity >> 10, ways));
        if !calibrated {
            prop_assert!(two.access_ns >= one.access_ns);
        }
    }

    /// Accounting is linear in activity: doubling every count doubles the
    /// dynamic energy and static energy exactly.
    #[test]
    fn accounting_is_linear(
        cycles in 1u64..1u64<<32,
        l1 in 0u64..1u64<<24,
        l2 in 0u64..1u64<<20,
        llc in 0u64..1u64<<16,
    ) {
        let params = EnergyParams {
            l1: l1_energy_of(32 << 10, 2),
            l1_ways: 2,
            l2: Some(L2_TABLE2),
            llc: LLC_OOO_TABLE2,
            has_predictor: true,
        };
        let counts = ActivityCounts {
            cycles,
            l1_reads: l1,
            l1_waypred_correct: 0,
            l1_demand_accesses: l1,
            l2_accesses: l2,
            llc_accesses: llc,
        };
        let double = ActivityCounts {
            cycles: cycles * 2,
            l1_reads: l1 * 2,
            l1_waypred_correct: 0,
            l1_demand_accesses: l1 * 2,
            l2_accesses: l2 * 2,
            llc_accesses: llc * 2,
        };
        let e1 = account(&params, &counts);
        let e2 = account(&params, &double);
        prop_assert!((e2.total() - 2.0 * e1.total()).abs() < 1e-12 * e1.total().max(1e-30));
    }

    /// Way prediction can only reduce L1 dynamic energy, never below
    /// 1/ways of the unpredicted value.
    #[test]
    fn waypred_scaling_bounds(reads in 1u64..1u64<<20, correct_frac in 0.0f64..=1.0) {
        let params = EnergyParams {
            l1: l1_energy_of(32 << 10, 8),
            l1_ways: 8,
            l2: None,
            llc: LLC_INORDER_TABLE2,
            has_predictor: false,
        };
        let correct = (reads as f64 * correct_frac) as u64;
        let base = ActivityCounts {
            cycles: 1000,
            l1_reads: reads,
            l1_waypred_correct: 0,
            l1_demand_accesses: reads,
            l2_accesses: 0,
            llc_accesses: 0,
        };
        let wp = ActivityCounts { l1_waypred_correct: correct, ..base };
        let e_base = account(&params, &base);
        let e_wp = account(&params, &wp);
        prop_assert!(e_wp.l1_dynamic <= e_base.l1_dynamic + 1e-18);
        prop_assert!(e_wp.l1_dynamic >= e_base.l1_dynamic / 8.0 - 1e-18);
    }
}

#[test]
fn fig1_feasibility_matches_geometry_math() {
    for row in fig1_sweep() {
        let way_kib = row.kib / row.ways as u64;
        assert_eq!(row.vipt_feasible, way_kib <= 4, "{}KiB {}-way", row.kib, row.ways);
    }
}
