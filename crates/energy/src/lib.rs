#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # sipt-energy — CACTI-like latency/energy model and hierarchy accounting
//!
//! Two halves:
//!
//! - [`cacti`]: an analytical stand-in for the paper's CACTI 6.5 sweeps —
//!   access latency, per-access dynamic energy, and static power as a
//!   function of capacity/associativity/ports/banks, calibrated so the
//!   five Table II operating points are returned exactly. Regenerates the
//!   Fig 1 design-space sweep via [`cacti::fig1_sweep`].
//! - [`accounting`]: total cache-hierarchy energy over a simulation
//!   (dynamic × counts + static × time), with the paper's way-prediction
//!   scaling and predictor-overhead charges.
//!
//! ```
//! use sipt_energy::cacti::{estimate, ArrayConfig};
//! // The impossible-as-VIPT configuration SIPT unlocks:
//! let e = estimate(ArrayConfig::simple(64 << 10, 4));
//! assert_eq!(e.latency_cycles, 3);
//! ```

pub mod accounting;
pub mod cacti;

pub use accounting::{
    account, ActivityCounts, EnergyBreakdown, EnergyParams, LevelEnergy, L2_TABLE2,
    LLC_INORDER_TABLE2, LLC_OOO_TABLE2,
};
pub use cacti::{
    estimate, fig1_grid, fig1_point, fig1_sweep, ArrayConfig, ArrayEstimate, Fig1Row, CORE_GHZ,
};

/// Energy parameters of an L1 geometry straight from the CACTI-like model.
pub fn l1_energy_of(capacity: u64, ways: u32) -> LevelEnergy {
    let e = cacti::estimate(cacti::ArrayConfig::simple(capacity, ways));
    LevelEnergy { dynamic_nj: e.dynamic_nj, static_mw: e.static_mw }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l1_energy_of_matches_table2() {
        let e = l1_energy_of(32 << 10, 8);
        assert_eq!(e.dynamic_nj, 0.38);
        assert_eq!(e.static_mw, 46.0);
    }
}
