//! A CACTI-like analytical model of L1 access latency and energy.
//!
//! The paper uses CACTI 6.5 at 32 nm to sweep Table I's configuration
//! space (16–128 KiB × 2–32 ways × ports × banks) and reports, in Fig 1,
//! the range and mean of access latencies normalized to the 32 KiB 8-way
//! baseline. We replace CACTI with a small analytical model *calibrated to
//! the paper's own Table II operating points*, preserving the two trends
//! the paper draws from Fig 1: associativity dominates latency (especially
//! beyond 4 ways), and capacity matters less.
//!
//! Known Table II points are returned exactly; everything else comes from
//! the analytic fit. As the paper itself notes of CACTI, this is "a rough
//! model — we expect generally the same trends (though different values)".

/// Core clock used to convert nanoseconds to cycles (3 GHz, Table II).
pub const CORE_GHZ: f64 = 3.0;

/// One L1 array configuration in the CACTI sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArrayConfig {
    /// Capacity in bytes.
    pub capacity: u64,
    /// Associativity.
    pub ways: u32,
    /// Read ports (Table I: 1 or 2).
    pub read_ports: u32,
    /// Banks (Table I: 1, 2 or 4).
    pub banks: u32,
}

impl ArrayConfig {
    /// A single-ported, single-banked configuration.
    pub fn simple(capacity: u64, ways: u32) -> Self {
        Self { capacity, ways, read_ports: 1, banks: 1 }
    }
}

/// Latency/energy estimate for one configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArrayEstimate {
    /// Access time in nanoseconds.
    pub access_ns: f64,
    /// Access latency in whole core cycles at 3 GHz.
    pub latency_cycles: u64,
    /// Dynamic energy per (all-ways parallel) access, nanojoules.
    pub dynamic_nj: f64,
    /// Static (leakage) power, milliwatts.
    pub static_mw: f64,
}

/// Table II calibration points `(KiB, ways) → (cycles, nJ, mW)`.
const TABLE2: &[(u64, u32, u64, f64, f64)] = &[
    (32, 8, 4, 0.38, 46.0),
    (32, 2, 2, 0.10, 24.0),
    (32, 4, 3, 0.185, 30.0),
    (64, 4, 3, 0.27, 51.0),
    (128, 4, 4, 0.29, 69.0),
];

/// Analytic access time in ns for a single-port single-bank array.
fn base_access_ns(capacity: u64, ways: u32) -> f64 {
    let cap_steps = ((capacity as f64) / (16.0 * 1024.0)).log2().max(0.0);
    let w = ways as f64;
    // Decoder + wordline term grows slowly with capacity; comparator/mux
    // and way-select wiring grow with sqrt(ways); very high associativity
    // at large capacity pays a superlinear wire penalty.
    let assoc = w.sqrt() - 1.0;
    let big_assoc = (w.sqrt() - (8.0f64).sqrt()).max(0.0);
    0.30 + 0.12 * cap_steps + 0.36 * assoc + 0.60 * cap_steps * big_assoc * 0.333
}

/// Port/bank multipliers: a second read port lengthens bitlines (~30%);
/// banking adds routing overhead for small arrays but relieves pressure on
/// large ones (net small effect either way).
fn port_bank_factor(read_ports: u32, banks: u32) -> f64 {
    let port = 1.0 + 0.30 * (read_ports.saturating_sub(1)) as f64;
    let bank = 1.0 + 0.05 * (banks as f64).log2();
    port * bank
}

/// Analytic dynamic energy per access in nJ (all ways read in parallel).
fn base_dynamic_nj(capacity: u64, ways: u32) -> f64 {
    let cap = (capacity as f64) / (32.0 * 1024.0);
    // Calibrated to the 32 KiB column of Table II: ~×1.9 per doubling of
    // ways, and a sublinear capacity term.
    0.10 * ((ways as f64) / 2.0).powf(0.93) * cap.powf(0.35)
}

/// Analytic static power in mW.
fn base_static_mw(capacity: u64, ways: u32) -> f64 {
    let cap = (capacity as f64) / (32.0 * 1024.0);
    // Leakage scales with area ≈ capacity, plus per-way periphery.
    18.0 * cap.powf(0.78) + 1.5 * ways as f64
}

/// Estimate latency and energy for an L1 configuration.
///
/// Single-port, single-bank estimates for the five Table II operating
/// points are returned exactly as published; everything else uses the
/// analytic fit.
///
/// ```
/// use sipt_energy::cacti::{estimate, ArrayConfig};
/// let baseline = estimate(ArrayConfig::simple(32 << 10, 8));
/// assert_eq!(baseline.latency_cycles, 4);
/// assert_eq!(baseline.dynamic_nj, 0.38);
/// let sipt = estimate(ArrayConfig::simple(32 << 10, 2));
/// assert_eq!(sipt.latency_cycles, 2);
/// ```
pub fn estimate(config: ArrayConfig) -> ArrayEstimate {
    let kib = config.capacity >> 10;
    let calibrated = (config.read_ports == 1 && config.banks == 1)
        .then(|| TABLE2.iter().find(|&&(c, w, ..)| c == kib && w == config.ways))
        .flatten();
    let access_ns = base_access_ns(config.capacity, config.ways)
        * port_bank_factor(config.read_ports, config.banks);
    match calibrated {
        Some(&(_, _, cycles, nj, mw)) => ArrayEstimate {
            access_ns: cycles as f64 / CORE_GHZ,
            latency_cycles: cycles,
            dynamic_nj: nj,
            static_mw: mw,
        },
        None => ArrayEstimate {
            access_ns,
            latency_cycles: (access_ns * CORE_GHZ).ceil() as u64,
            dynamic_nj: base_dynamic_nj(config.capacity, config.ways)
                * port_bank_factor(config.read_ports, config.banks),
            static_mw: base_static_mw(config.capacity, config.ways) * config.read_ports as f64,
        },
    }
}

/// The full Table I sweep: capacities × associativities, with latency
/// range and mean over the port/bank sub-sweep, normalized to the 32 KiB
/// 8-way single-port single-bank baseline — the data behind Fig 1.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig1Row {
    /// Capacity in KiB.
    pub kib: u64,
    /// Associativity.
    pub ways: u32,
    /// Minimum normalized latency over ports × banks.
    pub min: f64,
    /// Mean normalized latency.
    pub mean: f64,
    /// Maximum normalized latency.
    pub max: f64,
    /// Whether this configuration is buildable as VIPT with 4 KiB pages.
    pub vipt_feasible: bool,
}

/// The (capacity KiB, ways) grid of the Table I sweep, in figure order,
/// skipping degenerate points with fewer than one line per way.
pub fn fig1_grid() -> Vec<(u64, u32)> {
    let mut grid = Vec::new();
    for kib in [16u64, 32, 64, 128] {
        for ways in [2u32, 4, 8, 16, 32] {
            if (kib << 10) >= ways as u64 * 64 {
                grid.push((kib, ways));
            }
        }
    }
    grid
}

/// Compute a single Fig 1 point: the latency range over the port/bank
/// sub-sweep at one (capacity, associativity), normalized to the 32 KiB
/// 8-way single-port single-bank baseline. Pure — callers may evaluate
/// grid points in any order (or in parallel) without changing results.
pub fn fig1_point(kib: u64, ways: u32) -> Fig1Row {
    let baseline = estimate(ArrayConfig::simple(32 << 10, 8)).access_ns;
    let mut lats = Vec::new();
    for ports in [1u32, 2] {
        for banks in [1u32, 2, 4] {
            let e = estimate(ArrayConfig { capacity: kib << 10, ways, read_ports: ports, banks });
            lats.push(e.access_ns / baseline);
        }
    }
    let min = lats.iter().copied().fold(f64::INFINITY, f64::min);
    let max = lats.iter().copied().fold(0.0, f64::max);
    let mean = lats.iter().sum::<f64>() / lats.len() as f64;
    Fig1Row { kib, ways, min, mean, max, vipt_feasible: (kib << 10) / ways as u64 <= 4096 }
}

/// Compute the Fig 1 sweep.
pub fn fig1_sweep() -> Vec<Fig1Row> {
    fig1_grid().into_iter().map(|(kib, ways)| fig1_point(kib, ways)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_points_are_exact() {
        for &(kib, ways, cycles, nj, mw) in TABLE2 {
            let e = estimate(ArrayConfig::simple(kib << 10, ways));
            assert_eq!(e.latency_cycles, cycles, "{kib}KiB {ways}w");
            assert_eq!(e.dynamic_nj, nj);
            assert_eq!(e.static_mw, mw);
        }
    }

    #[test]
    fn feasible_small_cache_is_fast() {
        let e = estimate(ArrayConfig::simple(16 << 10, 4));
        assert_eq!(e.latency_cycles, 2, "16KiB 4-way must be a 2-cycle cache");
    }

    #[test]
    fn associativity_dominates_latency() {
        // Paper: "associativity has the greater impact … especially beyond
        // 4 ways". Quadrupling ways must cost more than quadrupling
        // capacity.
        let base = estimate(ArrayConfig::simple(32 << 10, 4)).access_ns;
        let more_ways = estimate(ArrayConfig::simple(32 << 10, 16)).access_ns;
        let more_cap = estimate(ArrayConfig::simple(128 << 10, 4)).access_ns;
        assert!(more_ways - base > more_cap - base, "ways {more_ways} cap {more_cap}");
    }

    #[test]
    fn energy_grows_with_ways() {
        let e2 = estimate(ArrayConfig::simple(32 << 10, 2)).dynamic_nj;
        let e4 = estimate(ArrayConfig::simple(32 << 10, 4)).dynamic_nj;
        let e8 = estimate(ArrayConfig::simple(32 << 10, 8)).dynamic_nj;
        assert!(e2 < e4 && e4 < e8);
        // Factor ≈ 3.8 from 2-way to 8-way per Table II.
        assert!((e8 / e2 - 3.8).abs() < 0.1);
    }

    #[test]
    fn fig1_sweep_shape() {
        let rows = fig1_sweep();
        // 4 capacities × 5 associativities, all feasible line sizes.
        assert_eq!(rows.len(), 20);
        // The baseline row normalizes near 1.
        let baseline = rows.iter().find(|r| r.kib == 32 && r.ways == 8).unwrap();
        assert!(baseline.min <= 1.0 && baseline.max >= 1.0);
        // Worst case is large and highly associative, several times the
        // baseline (paper: up to 7.4×).
        let worst = rows.iter().map(|r| r.max).fold(0.0, f64::max);
        assert!(worst > 4.0, "worst normalized latency = {worst}");
        assert!(worst < 12.0, "worst normalized latency = {worst}");
        // Feasibility labels: 32 KiB 8-way feasible, 32 KiB 2-way not.
        assert!(rows.iter().find(|r| r.kib == 32 && r.ways == 8).unwrap().vipt_feasible);
        assert!(!rows.iter().find(|r| r.kib == 32 && r.ways == 2).unwrap().vipt_feasible);
        // Desirable configs (larger, lower-assoc, fast) are infeasible.
        let desirable = rows.iter().find(|r| r.kib == 64 && r.ways == 4).unwrap();
        assert!(!desirable.vipt_feasible);
        assert!(desirable.mean < 1.0, "64KiB 4-way should beat baseline latency");
    }

    #[test]
    fn ports_and_banks_widen_the_range() {
        let one = estimate(ArrayConfig { capacity: 32 << 10, ways: 16, read_ports: 1, banks: 1 });
        let two = estimate(ArrayConfig { capacity: 32 << 10, ways: 16, read_ports: 2, banks: 4 });
        assert!(two.access_ns > one.access_ns);
    }

    #[test]
    fn monotone_in_capacity_for_uncalibrated_points() {
        let mut prev = 0.0;
        for kib in [16u64, 32, 64, 128] {
            let e = estimate(ArrayConfig::simple(kib << 10, 16));
            assert!(e.access_ns > prev);
            prev = e.access_ns;
            assert!(e.static_mw > 0.0 && e.dynamic_nj > 0.0);
        }
    }
}
