//! Cache-hierarchy energy accounting (paper §III.A methodology).
//!
//! Total energy = Σ per-level dynamic energy × access counts + per-level
//! static power × runtime. L1 values come from the CACTI-like model (or
//! Table II exactly); L2/LLC use Table II's published per-access energies
//! and static powers. Way prediction scales L1 dynamic energy down by
//! `1/ways` on correct predictions, exactly as the paper models it, and
//! the perceptron/IDB overhead (0.34% dynamic, 0.0007% static of the
//! baseline L1) is charged when a predictor is present.

use crate::cacti::CORE_GHZ;

/// Dynamic-energy and leakage parameters of one cache level.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LevelEnergy {
    /// Energy of one access in nanojoules.
    pub dynamic_nj: f64,
    /// Static power in milliwatts.
    pub static_mw: f64,
}

/// Table II: private 256 KiB L2 (OOO systems).
pub const L2_TABLE2: LevelEnergy = LevelEnergy { dynamic_nj: 0.13, static_mw: 102.0 };
/// Table II: shared 2 MiB LLC of the OOO three-level system.
pub const LLC_OOO_TABLE2: LevelEnergy = LevelEnergy { dynamic_nj: 0.35, static_mw: 578.0 };
/// Table II: shared 1 MiB LLC of the in-order two-level system.
pub const LLC_INORDER_TABLE2: LevelEnergy = LevelEnergy { dynamic_nj: 0.29, static_mw: 532.0 };

/// Baseline L1 (32 KiB 8-way) figures used to size the predictor overhead.
const BASELINE_L1_DYNAMIC_NJ: f64 = 0.38;
const BASELINE_L1_STATIC_MW: f64 = 46.0;
/// Paper §V: perceptron read = 0.34% of a baseline L1 access; training is
/// estimated at no more than another read.
const PREDICTOR_DYNAMIC_FRACTION: f64 = 0.0034 * 2.0;
/// Paper §V: predictor static power = 0.0007% of the baseline L1.
const PREDICTOR_STATIC_FRACTION: f64 = 0.000007;

/// Energy parameters of a whole hierarchy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyParams {
    /// L1 parameters (per parallel all-way access).
    pub l1: LevelEnergy,
    /// L1 associativity (for way-prediction scaling).
    pub l1_ways: u32,
    /// Private L2, if the system has one.
    pub l2: Option<LevelEnergy>,
    /// Last-level cache.
    pub llc: LevelEnergy,
    /// Whether a SIPT predictor (perceptron [+ IDB]) is present.
    pub has_predictor: bool,
}

/// Activity counts over a simulation, per core (LLC counts are global).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ActivityCounts {
    /// Total runtime in core cycles.
    pub cycles: u64,
    /// L1 array reads (demand + replays + way-mispredict second reads).
    pub l1_reads: u64,
    /// L1 reads for which way prediction selected the correct way
    /// (0 when way prediction is off).
    pub l1_waypred_correct: u64,
    /// L1 demand accesses (each queries the predictor once).
    pub l1_demand_accesses: u64,
    /// L2 accesses (lookups + fills + absorbed writebacks).
    pub l2_accesses: u64,
    /// LLC accesses.
    pub llc_accesses: u64,
}

/// Energy breakdown in joules.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyBreakdown {
    /// L1 dynamic energy.
    pub l1_dynamic: f64,
    /// L1 static energy.
    pub l1_static: f64,
    /// L2 dynamic energy.
    pub l2_dynamic: f64,
    /// L2 static energy.
    pub l2_static: f64,
    /// LLC dynamic energy.
    pub llc_dynamic: f64,
    /// LLC static energy.
    pub llc_static: f64,
    /// Predictor (perceptron + IDB) dynamic + static energy.
    pub predictor: f64,
}

impl EnergyBreakdown {
    /// Total energy in joules.
    pub fn total(&self) -> f64 {
        self.l1_dynamic
            + self.l1_static
            + self.l2_dynamic
            + self.l2_static
            + self.llc_dynamic
            + self.llc_static
            + self.predictor
    }

    /// Total dynamic energy in joules (the paper's "normalized dynamic
    /// energy" series divides this by a baseline's `total()`).
    pub fn dynamic(&self) -> f64 {
        self.l1_dynamic + self.l2_dynamic + self.llc_dynamic + self.predictor
    }

    /// Element-wise sum (accumulate cores of a multicore).
    pub fn accumulate(&mut self, other: &EnergyBreakdown) {
        self.l1_dynamic += other.l1_dynamic;
        self.l1_static += other.l1_static;
        self.l2_dynamic += other.l2_dynamic;
        self.l2_static += other.l2_static;
        self.llc_dynamic += other.llc_dynamic;
        self.llc_static += other.llc_static;
        self.predictor += other.predictor;
    }
}

const NJ: f64 = 1e-9;

/// Compute the hierarchy energy of one core's activity.
///
/// Way-prediction scaling: a correct prediction reads one way instead of
/// all, i.e. saves `(ways-1)/ways` of the access energy.
pub fn account(params: &EnergyParams, counts: &ActivityCounts) -> EnergyBreakdown {
    let seconds = counts.cycles as f64 / (CORE_GHZ * 1e9);
    let mw_to_j = |mw: f64| mw * 1e-3 * seconds;

    debug_assert!(counts.l1_waypred_correct <= counts.l1_reads);
    let effective_l1_reads = counts.l1_reads as f64
        - counts.l1_waypred_correct as f64 * (params.l1_ways as f64 - 1.0) / params.l1_ways as f64;

    let predictor = if params.has_predictor {
        counts.l1_demand_accesses as f64 * BASELINE_L1_DYNAMIC_NJ * PREDICTOR_DYNAMIC_FRACTION * NJ
            + mw_to_j(BASELINE_L1_STATIC_MW * PREDICTOR_STATIC_FRACTION)
    } else {
        0.0
    };

    EnergyBreakdown {
        l1_dynamic: effective_l1_reads * params.l1.dynamic_nj * NJ,
        l1_static: mw_to_j(params.l1.static_mw),
        l2_dynamic: counts.l2_accesses as f64 * params.l2.map_or(0.0, |l| l.dynamic_nj) * NJ,
        l2_static: mw_to_j(params.l2.map_or(0.0, |l| l.static_mw)),
        llc_dynamic: counts.llc_accesses as f64 * params.llc.dynamic_nj * NJ,
        llc_static: mw_to_j(params.llc.static_mw),
        predictor,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params_baseline() -> EnergyParams {
        EnergyParams {
            l1: LevelEnergy { dynamic_nj: 0.38, static_mw: 46.0 },
            l1_ways: 8,
            l2: Some(L2_TABLE2),
            llc: LLC_OOO_TABLE2,
            has_predictor: false,
        }
    }

    fn counts() -> ActivityCounts {
        ActivityCounts {
            cycles: 3_000_000_000, // 1 second
            l1_reads: 1_000_000,
            l1_waypred_correct: 0,
            l1_demand_accesses: 1_000_000,
            l2_accesses: 100_000,
            llc_accesses: 10_000,
        }
    }

    #[test]
    fn dynamic_energy_is_counts_times_per_access() {
        let e = account(&params_baseline(), &counts());
        assert!((e.l1_dynamic - 1_000_000.0 * 0.38e-9).abs() < 1e-15);
        assert!((e.l2_dynamic - 100_000.0 * 0.13e-9).abs() < 1e-15);
        assert!((e.llc_dynamic - 10_000.0 * 0.35e-9).abs() < 1e-15);
    }

    #[test]
    fn static_energy_is_power_times_time() {
        let e = account(&params_baseline(), &counts());
        // 1 second at 46 mW.
        assert!((e.l1_static - 0.046).abs() < 1e-9);
        assert!((e.l2_static - 0.102).abs() < 1e-9);
        assert!((e.llc_static - 0.578).abs() < 1e-9);
        assert_eq!(e.predictor, 0.0);
    }

    #[test]
    fn way_prediction_scales_l1_dynamic() {
        let p = params_baseline();
        let mut c = counts();
        c.l1_waypred_correct = c.l1_reads; // all predictions correct
        let e = account(&p, &c);
        // Per access: 1/8 of the full energy.
        assert!((e.l1_dynamic - 1_000_000.0 * 0.38e-9 / 8.0).abs() < 1e-15);
    }

    #[test]
    fn predictor_overhead_is_under_two_percent() {
        let mut p = params_baseline();
        p.has_predictor = true;
        let e = account(&p, &counts());
        assert!(e.predictor > 0.0);
        assert!(
            e.predictor < 0.02 * (e.l1_dynamic + e.l1_static),
            "overhead {} vs L1 {}",
            e.predictor,
            e.l1_dynamic + e.l1_static
        );
    }

    #[test]
    fn two_level_system_has_no_l2_energy() {
        let p = EnergyParams {
            l1: LevelEnergy { dynamic_nj: 0.27, static_mw: 51.0 },
            l1_ways: 4,
            l2: None,
            llc: LLC_INORDER_TABLE2,
            has_predictor: true,
        };
        let e = account(&p, &counts());
        assert_eq!(e.l2_dynamic, 0.0);
        assert_eq!(e.l2_static, 0.0);
        assert!(e.total() > e.dynamic());
    }

    #[test]
    fn accumulate_sums_components() {
        let e1 = account(&params_baseline(), &counts());
        let mut sum = e1;
        sum.accumulate(&e1);
        assert!((sum.total() - 2.0 * e1.total()).abs() < 1e-12);
        assert!((sum.dynamic() - 2.0 * e1.dynamic()).abs() < 1e-12);
    }

    #[test]
    fn lower_associativity_l1_saves_energy() {
        // The headline effect: a 2-way SIPT L1 at 0.1 nJ / 24 mW vs the
        // 8-way baseline at 0.38 nJ / 46 mW.
        let sipt = EnergyParams {
            l1: LevelEnergy { dynamic_nj: 0.10, static_mw: 24.0 },
            l1_ways: 2,
            l2: Some(L2_TABLE2),
            llc: LLC_OOO_TABLE2,
            has_predictor: true,
        };
        let base = account(&params_baseline(), &counts());
        let spec = account(&sipt, &counts());
        assert!(spec.total() < base.total());
        assert!(spec.l1_dynamic < base.l1_dynamic / 3.0);
    }
}
