#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # sipt-proptest — an offline property-testing shim
//!
//! The workspace's property tests were written against the external
//! `proptest` crate, which cannot be fetched in the hermetic build
//! environment. This crate re-implements the (small) subset of the
//! proptest API those tests use, driven by the in-tree deterministic
//! generators from [`sipt_rng`], and is wired into each crate's
//! dev-dependencies under the name `proptest` so the test sources compile
//! unchanged:
//!
//! - the [`proptest!`] macro (`fn name(arg in strategy, ...) { body }`);
//! - [`prop_assert!`] / [`prop_assert_eq!`];
//! - strategies: integer ranges (`a..b`, `a..=b`), [`prelude::any`],
//!   tuples up to arity 6, [`collection::vec`], [`collection::hash_set`],
//!   [`option::of`], and [`Strategy::prop_map`].
//!
//! Unlike real proptest there is no shrinking and no persisted failure
//! corpus: each property runs a fixed number of deterministically seeded
//! cases (default 64, override with `SIPT_PROPTEST_CASES`), so failures
//! reproduce exactly across runs and machines.

use std::collections::HashSet;
use std::hash::Hash;
use std::ops::{Range, RangeInclusive};

pub use sipt_rng::{Rng, SampleRange, SampleUniform, SeedableRng, StdRng};

/// A generator of random values of one type.
///
/// The shim's analogue of `proptest::strategy::Strategy`: `sample` draws
/// one value from the given RNG.
pub trait Strategy {
    /// The type of the generated values.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Map generated values through `f` (proptest's `prop_map`).
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

impl<T: SampleUniform + sipt_rng::One> Strategy for Range<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T: SampleUniform> Strategy for RangeInclusive<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

/// Types with a full-domain default strategy (proptest's `Arbitrary`).
pub trait Arbitrary {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`prelude::any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($($s:ident/$v:ident),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($s,)+) = self;
                ($($s.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A / a);
impl_tuple_strategy!(A / a, B / b);
impl_tuple_strategy!(A / a, B / b, C / c);
impl_tuple_strategy!(A / a, B / b, C / c, D / d);
impl_tuple_strategy!(A / a, B / b, C / c, D / d, E / e);
impl_tuple_strategy!(A / a, B / b, C / c, D / d, E / e, F / f);

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::*;

    /// Strategy for `Vec<T>` with a length drawn from `len`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    /// A vector of values from `elem` whose length is uniform in `len`.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            let n = if self.len.start + 1 == self.len.end {
                self.len.start
            } else {
                rng.gen_range(self.len.clone())
            };
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }

    /// Strategy for `HashSet<T>` with a *target* size drawn from `size`
    /// (duplicates collapse, as in proptest).
    #[derive(Debug, Clone)]
    pub struct HashSetStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// A hash set of values from `elem` with up to `size` elements.
    pub fn hash_set<S>(elem: S, size: Range<usize>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        HashSetStrategy { elem, size }
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        type Value = HashSet<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            let n = rng.gen_range(self.size.clone());
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// Option strategies (`proptest::option`).
pub mod option {
    use super::*;

    /// Strategy for `Option<T>`.
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `Some` with probability 3/4 (proptest's default weighting), `None`
    /// otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            if rng.next_u64() & 3 == 0 {
                None
            } else {
                Some(self.inner.sample(rng))
            }
        }
    }
}

/// The number of cases each property runs (`SIPT_PROPTEST_CASES`
/// overrides; default 64).
pub fn cases() -> u32 {
    std::env::var("SIPT_PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(64)
}

/// Everything a property-test module imports (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Any, Arbitrary, Strategy};

    /// The default full-domain strategy for `T` (proptest's `any`).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any { _marker: std::marker::PhantomData }
    }
}

/// Assert inside a property (no shrinking — identical to `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a property (identical to `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality inside a property (identical to `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running [`cases`] deterministically seeded cases.
/// The case index is folded into the seed so every case sees fresh data,
/// while reruns see exactly the same stream.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cases = $crate::cases();
                // Seed from the property name so distinct properties
                // explore distinct streams.
                let __seed = {
                    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
                    for b in stringify!($name).bytes() {
                        h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
                    }
                    h
                };
                for __case in 0..__cases {
                    let mut __rng = <$crate::StdRng as $crate::SeedableRng>::seed_from_u64(
                        __seed ^ (__case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    );
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)+
                    { $body }
                }
            }
        )+
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::{collection, option, SeedableRng, StdRng};

    #[test]
    fn strategies_sample_within_domains() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let v = collection::vec(0u64..10, 1..5).sample(&mut rng);
            assert!((1..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
            let s = collection::hash_set(0u64..100, 1..8).sample(&mut rng);
            assert!(s.len() < 8);
            let o = option::of(1u32..=3).sample(&mut rng);
            if let Some(x) = o {
                assert!((1..=3).contains(&x));
            }
            let (a, b, c) = (0u8..4, any::<bool>(), 10usize..=11).sample(&mut rng);
            assert!(a < 4);
            let _ = b;
            assert!(c == 10 || c == 11);
        }
    }

    #[test]
    fn prop_map_applies() {
        let mut rng = StdRng::seed_from_u64(2);
        let doubled = (1u64..100).prop_map(|x| x * 2);
        for _ in 0..100 {
            let v = doubled.sample(&mut rng);
            assert_eq!(v % 2, 0);
            assert!((2..200).contains(&v));
        }
    }

    #[test]
    fn option_of_produces_both_variants() {
        let mut rng = StdRng::seed_from_u64(3);
        let s = option::of(0u64..10);
        let outcomes: Vec<_> = (0..100).map(|_| s.sample(&mut rng).is_some()).collect();
        assert!(outcomes.iter().any(|&x| x));
        assert!(outcomes.iter().any(|&x| !x));
    }

    // The macro itself, exercised end-to-end.
    proptest! {
        #[test]
        fn macro_generates_running_tests(
            xs in collection::vec(0u64..50, 1..20),
            flag in any::<bool>(),
        ) {
            prop_assert!(!xs.is_empty());
            prop_assert!(xs.iter().all(|&x| x < 50));
            let _ = flag;
            prop_assert_eq!(*xs.iter().max().unwrap(), xs.iter().copied().fold(0, u64::max));
        }
    }
}
