//! Differential property tests pinning the fused [`PredictorBank`] to the
//! retained scalar predictors it merged — `PerceptronPredictor`,
//! `IndexDeltaBuffer`, and `CounterPredictor` — on arbitrary
//! `(pc, outcome)` streams, for every bypass configuration the SIPT L1
//! composes them in, and with the block-staged front-end both off and on
//! (including the generation-stamp boundary case of two accesses sharing
//! a row inside one staged window).
//!
//! The scalar predictors are the oracles: each step drives both sides
//! with the same access and asserts identical predictions, margins,
//! deltas, and statistics. A divergence anywhere in a stream fails on the
//! first access that disagrees, so shrinkage isn't needed to localize.

use proptest::prelude::*;
use sipt_predictors::{
    BlockPredictions, CounterConfig, CounterPredictor, IdbConfig, IndexDeltaBuffer,
    PerceptronConfig, PerceptronPredictor, PredictorBank,
};

/// One synthetic access: a PC drawn from a small aliasing universe, the
/// resolved outcome, an observed index delta, and whether the combined
/// policy engages the IDB on this access.
type Access = (u64, bool, u64, bool);

fn accesses() -> impl Strategy<Value = Vec<Access>> {
    // 48 distinct PCs over 64-entry tables forces row aliasing (same-row
    // reuse within short windows) without collapsing to one hot row.
    proptest::collection::vec(
        (0u64..48, any::<bool>(), 0u64..8, any::<bool>())
            .prop_map(|(sel, un, delta, idb)| (0x0040_0100 + sel * 4, un, delta, idb)),
        1..200,
    )
}

fn bank() -> PredictorBank {
    PredictorBank::new(PerceptronConfig::default(), IdbConfig::default(), CounterConfig::default())
}

proptest! {
    /// Perceptron bypass: `perceptron_access` is the scalar
    /// `predict; last_margin; update` sequence, statistics included.
    #[test]
    fn bank_matches_scalar_perceptron(stream in accesses()) {
        let mut bank = bank();
        let mut oracle = PerceptronPredictor::new(PerceptronConfig::default());
        for (i, &(pc, un, _, _)) in stream.iter().enumerate() {
            let want_spec = oracle.predict(pc);
            let want_margin = oracle.last_margin();
            oracle.update(pc, un);
            let (spec, margin) = bank.perceptron_access(pc, un, None);
            prop_assert_eq!(spec, want_spec, "speculate diverged at access {}", i);
            prop_assert_eq!(margin, want_margin, "margin diverged at access {}", i);
        }
        prop_assert_eq!(bank.perceptron_stats(), oracle.stats());
    }

    /// Counter bypass: `counter_access` is the scalar
    /// `predict; margin; update` sequence on the raw-PC-indexed table.
    #[test]
    fn bank_matches_scalar_counter(stream in accesses()) {
        let mut bank = bank();
        let mut oracle = CounterPredictor::new(CounterConfig::default());
        for (i, &(pc, un, _, _)) in stream.iter().enumerate() {
            let want_spec = oracle.predict(pc);
            let want_margin = oracle.margin(pc);
            oracle.update(pc, un);
            let (spec, margin) = bank.counter_access(pc, un);
            prop_assert_eq!(spec, want_spec, "speculate diverged at access {}", i);
            prop_assert_eq!(margin, want_margin, "margin diverged at access {}", i);
        }
    }

    /// Combined policy (perceptron bypass + IDB): `combined_access` is the
    /// exact scalar composition the SIPT L1 performed before the bank —
    /// bypass predict, IDB predict only when the bypass said wait and the
    /// policy engages the IDB, bypass train, IDB update.
    #[test]
    fn bank_matches_scalar_combined_composition(stream in accesses()) {
        let mut bank = bank();
        let mut perceptron = PerceptronPredictor::new(PerceptronConfig::default());
        let mut idb = IndexDeltaBuffer::new(IdbConfig::default());
        for (i, &(pc, un, observed, want_idb)) in stream.iter().enumerate() {
            let want_spec = perceptron.predict(pc);
            let want_margin = perceptron.last_margin();
            let mut want_delta = 0u64;
            if !want_spec && want_idb {
                want_delta = idb.predict(pc);
            }
            perceptron.update(pc, un);
            if want_idb {
                idb.update(pc, observed);
            }
            let out = bank.combined_access(pc, un, want_idb, observed, None);
            prop_assert_eq!(out.speculate, want_spec, "speculate diverged at access {}", i);
            prop_assert_eq!(out.margin, want_margin, "margin diverged at access {}", i);
            prop_assert_eq!(out.delta, want_delta, "delta diverged at access {}", i);
            // The carry-free index add must match at every step too.
            prop_assert_eq!(bank.idb_apply(3, out.delta), idb.apply(3, want_delta));
        }
        prop_assert_eq!(bank.perceptron_stats(), perceptron.stats());
        prop_assert_eq!(bank.idb_stats(), idb.stats());
    }

    /// Staged replay is bit-identical to unstaged replay of the same
    /// stream, for arbitrary window sizes. Small windows exercise the
    /// window boundary (bank exactly current at each `stage_block`);
    /// large windows with 48 PCs over 64 rows exercise the generation
    /// stamps — repeated rows inside one window must fall back to the
    /// live scalar path exactly when a prior access may have trained or
    /// updated the row (including two same-row accesses back to back).
    #[test]
    fn staged_replay_is_bit_identical_to_unstaged(
        stream in accesses(),
        window in 1usize..24,
    ) {
        let mut staged_bank = bank();
        let mut live_bank = bank();
        let mut preds = BlockPredictions::new();
        let mut idx = 0usize;
        for chunk in stream.chunks(window) {
            let pcs: Vec<u64> = chunk.iter().map(|a| a.0).collect();
            let uns: Vec<bool> = chunk.iter().map(|a| a.1).collect();
            // The production caller stages with idb_active = whether the
            // consuming policy updates the IDB each access; model the
            // conservative (always-stamping) setting.
            staged_bank.stage_block(&pcs, &uns, true, idx, &mut preds);
            for (k, &(pc, un, observed, want_idb)) in chunk.iter().enumerate() {
                let s = preds.get(idx + k);
                prop_assert!(s.is_some(), "staged entry missing for access {}", idx + k);
                let a = staged_bank.combined_access(pc, un, want_idb, observed, s);
                let b = live_bank.combined_access(pc, un, want_idb, observed, None);
                prop_assert_eq!(a, b, "staged/unstaged diverged at access {}", idx + k);
            }
            idx += chunk.len();
        }
        prop_assert_eq!(staged_bank.perceptron_stats(), live_bank.perceptron_stats());
        prop_assert_eq!(staged_bank.idb_stats(), live_bank.idb_stats());
    }
}

/// Deterministic stamp-boundary case: two accesses to the *same* row in
/// one staged window, where the first trains (cold table, margin 0 ≤ θ).
/// The second access's staged dot is stale by construction; the stamp
/// must force `combined_access` onto the live path and reproduce the
/// unstaged result exactly.
#[test]
fn same_row_update_inside_a_block_invalidates_the_staged_value() {
    let mut staged_bank = bank();
    let mut live_bank = bank();
    let mut preds = BlockPredictions::new();

    let pc = 0x0040_0100u64;
    let pcs = [pc, pc, pc];
    let uns = [true, false, true];
    staged_bank.stage_block(&pcs, &uns, true, 0, &mut preds);

    for (k, &un) in uns.iter().enumerate() {
        let s = preds.get(k).expect("staged entry");
        if k > 0 {
            assert_eq!(
                s.flags & sipt_predictors::StagedAccess::P_VALID,
                0,
                "same-row access {k} must carry a stamped (invalid) staged sum"
            );
        }
        let a = staged_bank.combined_access(pc, un, true, 2, Some(s));
        let b = live_bank.combined_access(pc, un, true, 2, None);
        assert_eq!(a, b, "staged/unstaged diverged at access {k}");
    }
    assert_eq!(staged_bank.perceptron_stats(), live_bank.perceptron_stats());
    assert_eq!(staged_bank.idb_stats(), live_bank.idb_stats());
}
