//! The Index Delta Buffer (IDB) of paper §VI.
//!
//! A BTB-like, PC-indexed table whose entries hold the *delta* between the
//! speculative virtual index bits and the corresponding physical bits,
//! modulo `2^n` for `n` speculative bits. Because Linux's buddy allocator
//! maps memory in coarse contiguous blocks, the delta is constant across
//! an entire block (paper Fig 10), so a single narrow delta per load PC
//! predicts the post-translation index with high accuracy.

/// Configuration of the IDB.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IdbConfig {
    /// Number of entries (the paper matches the perceptron table: 64).
    pub entries: usize,
    /// Number of speculative index bits, i.e. delta width (1–3).
    pub bits: u32,
}

impl Default for IdbConfig {
    fn default() -> Self {
        Self { entries: 64, bits: 2 }
    }
}

impl IdbConfig {
    /// Total storage in bits (`entries × bits` plus one valid bit each).
    pub fn storage_bits(&self) -> u64 {
        self.entries as u64 * (self.bits as u64 + 1)
    }
}

/// Usage counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IdbStats {
    /// Predictions served from a valid entry.
    pub predictions: u64,
    /// Lookups that found no valid entry (cold miss → delta 0 is used).
    pub cold: u64,
    /// Updates that changed a stored delta.
    pub delta_changes: u64,
}

/// The index delta buffer.
///
/// ```
/// use sipt_predictors::{IndexDeltaBuffer, IdbConfig};
/// let mut idb = IndexDeltaBuffer::new(IdbConfig { entries: 64, bits: 3 });
/// // First sight of this PC: cold, predicts delta 0.
/// assert_eq!(idb.predict(0x400), 0);
/// idb.update(0x400, 0b101);
/// assert_eq!(idb.predict(0x400), 0b101);
/// ```
#[derive(Debug, Clone)]
pub struct IndexDeltaBuffer {
    config: IdbConfig,
    deltas: Vec<Option<u64>>,
    stats: IdbStats,
}

impl IndexDeltaBuffer {
    /// Create an empty IDB.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is 0 or `bits` is 0 or greater than 16.
    pub fn new(config: IdbConfig) -> Self {
        assert!(config.entries > 0, "need at least one entry");
        assert!(config.bits > 0 && config.bits <= 16, "delta width must be 1–16 bits");
        Self { deltas: vec![None; config.entries], config, stats: IdbStats::default() }
    }

    /// The configuration in force.
    pub fn config(&self) -> &IdbConfig {
        &self.config
    }

    #[inline]
    fn row(&self, pc: u64) -> usize {
        // Fold the high PC bits down before the modulo (see
        // `PerceptronPredictor::row`): raw `pc % entries` with a
        // power-of-two table maps aligned/strided PCs onto a fraction of
        // the rows; the xor-fold keeps small-PC behaviour identical while
        // making every row reachable from aligned code.
        let folded = pc ^ (pc >> 6);
        let entries = self.config.entries;
        // Power-of-two tables (the default, 128) index with a mask — no
        // integer division on the per-access path.
        if entries.is_power_of_two() {
            (folded as usize) & (entries - 1)
        } else {
            (folded as usize) % entries
        }
    }

    #[inline]
    fn mask(&self) -> u64 {
        (1u64 << self.config.bits) - 1
    }

    /// Predicted delta for the access at `pc` (0 when cold — equivalent to
    /// plain speculation). The prediction is PC-only, so like the bypass
    /// perceptron it runs at fetch/decode, off the critical path; the
    /// predicted delta is added to the VA's index bits after address
    /// generation with a carry-free `n`-bit add.
    pub fn predict(&mut self, pc: u64) -> u64 {
        match self.deltas[self.row(pc)] {
            Some(d) => {
                self.stats.predictions += 1;
                d
            }
            None => {
                self.stats.cold += 1;
                0
            }
        }
    }

    /// Record the observed delta of a resolved access.
    pub fn update(&mut self, pc: u64, observed_delta: u64) {
        let row = self.row(pc);
        let observed = observed_delta & self.mask();
        if self.deltas[row] != Some(observed) {
            if self.deltas[row].is_some() {
                self.stats.delta_changes += 1;
            }
            self.deltas[row] = Some(observed);
        }
    }

    /// Apply a predicted delta to virtual index bits: `(bits + delta) mod
    /// 2^n` — the truncating, carry-free add of paper Fig 11.
    pub fn apply(&self, va_index_bits: u64, delta: u64) -> u64 {
        (va_index_bits + delta) & self.mask()
    }

    /// Peek at the delta stored for `pc` without touching prediction
    /// statistics (telemetry/debug hook). `None` when the entry is cold.
    pub fn peek(&self, pc: u64) -> Option<u64> {
        self.deltas[self.row(pc)]
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> IdbStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn cold_entries_predict_zero() {
        let mut idb = IndexDeltaBuffer::new(IdbConfig::default());
        assert_eq!(idb.predict(123), 0);
        assert_eq!(idb.stats().cold, 1);
        assert_eq!(idb.stats().predictions, 0);
    }

    #[test]
    fn learns_and_relearns_deltas() {
        let mut idb = IndexDeltaBuffer::new(IdbConfig { entries: 8, bits: 2 });
        idb.update(5, 0b11);
        assert_eq!(idb.predict(5), 0b11);
        idb.update(5, 0b01); // region changed
        assert_eq!(idb.predict(5), 0b01);
        assert_eq!(idb.stats().delta_changes, 1);
    }

    #[test]
    fn deltas_truncate_to_width() {
        let mut idb = IndexDeltaBuffer::new(IdbConfig { entries: 4, bits: 2 });
        idb.update(0, 0b1111);
        assert_eq!(idb.predict(0), 0b11);
    }

    #[test]
    fn apply_is_carry_free() {
        let idb = IndexDeltaBuffer::new(IdbConfig { entries: 4, bits: 3 });
        assert_eq!(idb.apply(0b111, 0b001), 0b000);
        assert_eq!(idb.apply(0b010, 0b011), 0b101);
    }

    #[test]
    fn pcs_alias_modulo_entries() {
        let mut idb = IndexDeltaBuffer::new(IdbConfig { entries: 4, bits: 2 });
        idb.update(1, 0b10);
        // PC 5 aliases PC 1 in a 4-entry table (destructive aliasing, as in
        // a real BTB).
        assert_eq!(idb.predict(5), 0b10);
    }

    #[test]
    fn peek_observes_without_counting() {
        let mut idb = IndexDeltaBuffer::new(IdbConfig::default());
        assert_eq!(idb.peek(7), None);
        idb.update(7, 0b10);
        assert_eq!(idb.peek(7), Some(0b10));
        assert_eq!(idb.stats().predictions, 0, "peek must not count as a prediction");
        assert_eq!(idb.stats().cold, 0);
    }

    /// Regression: with the raw `(pc as usize) % entries` row index, a
    /// stream of 4-byte-aligned PCs could only reach a quarter of a
    /// 64-entry table; the folded index must make every row reachable.
    #[test]
    fn aligned_pcs_reach_every_row() {
        let idb = IndexDeltaBuffer::new(IdbConfig { entries: 64, bits: 2 });
        let rows: std::collections::BTreeSet<usize> =
            (0..256u64).map(|i| idb.row(0x0040_0000 + 4 * i)).collect();
        assert_eq!(
            rows.len(),
            64,
            "4-byte-aligned PCs must reach all 64 rows, reached {}: {rows:?}",
            rows.len()
        );
    }

    #[test]
    fn storage_is_tiny() {
        // 64 entries × (3 delta bits + 1 valid) = 256 bits = 32 bytes —
        // "very small" as the paper says.
        let cfg = IdbConfig { entries: 64, bits: 3 };
        assert_eq!(cfg.storage_bits(), 256);
    }

    #[test]
    #[should_panic(expected = "delta width")]
    fn zero_bits_rejected() {
        let _ = IndexDeltaBuffer::new(IdbConfig { entries: 4, bits: 0 });
    }

    proptest! {
        /// After an update, prediction always returns the observed delta
        /// (masked), for any pc/delta.
        #[test]
        fn update_then_predict_roundtrip(pc in any::<u64>(), delta in any::<u64>(), bits in 1u32..4) {
            let mut idb = IndexDeltaBuffer::new(IdbConfig { entries: 64, bits });
            idb.update(pc, delta);
            prop_assert_eq!(idb.predict(pc), delta & ((1 << bits) - 1));
        }

        /// apply() really is addition mod 2^bits.
        #[test]
        fn apply_matches_modular_add(x in 0u64..8, d in 0u64..8) {
            let idb = IndexDeltaBuffer::new(IdbConfig { entries: 4, bits: 3 });
            prop_assert_eq!(idb.apply(x, d), (x + d) % 8);
        }
    }
}
