//! The fused predictor bank: perceptron + IDB + counter in one
//! plane-interleaved SoA, plus the block-staged front-end.
//!
//! The three scalar predictors ([`PerceptronPredictor`],
//! [`IndexDeltaBuffer`], [`CounterPredictor`]) are all PC-indexed tables
//! that the combined SIPT policy hashes and chases independently on every
//! access: two xor-folded row hashes for the perceptron (predict *and*
//! update re-hash), one more for the IDB predict, another for the IDB
//! update, and separate heap allocations whose rows never share a cache
//! line. [`PredictorBank`] merges them into a single row-major plane:
//!
//! ```text
//! row r (stride = (h+3).next_power_of_two() i32 slots; h=12 → 16 = 64 B):
//!   [ w0 w1 … wh | idb | ctr | pad ]
//!     perceptron   §VI   §V-alt
//! ```
//!
//! One shared xor-fold (`pc ^ (pc >> 6)`) feeds the perceptron and IDB
//! row masks (the counter keeps its historical raw-PC index so the
//! ablation goldens are untouched), each fused access entry hashes once
//! and touches one cache line, and predict/update pairs run in a single
//! call so the row offset is never recomputed. Every entry point is
//! bit-identical — decisions, margins, *and* statistics — to the scalar
//! composition in the order the SIPT L1 invokes it; the scalar types are
//! retained as differential oracles (`tests/bank_differential.rs`).
//!
//! # Block staging
//!
//! [`PredictorBank::stage_block`] sweeps a block's packed `pc[]` array
//! *before* the timing loop: it computes row indices, perceptron
//! dot-products (reusing the const-generic h=12 unroll over the
//! contiguous weight plane), and IDB delta peeks into a per-block scratch
//! ([`BlockPredictions`]), so the in-loop path collapses to a load plus a
//! branchless select with the training deferred to the fused update.
//!
//! Staging is exact, not heuristic, because every input the predictors
//! consume is known before the timing loop runs:
//!
//! - the *outcome* stream (`unchanged` per access) derives from the
//!   block's pre-batched translations, never from timing;
//! - the global history therefore evolves deterministically during the
//!   sweep (`update` shifts it on **every** access, trained or not), so
//!   each staged dot-product uses the exact history its access will see;
//! - only *weight mutations* (trainings) can invalidate a staged row.
//!   `stage_block` emits per-row generation stamps: a row is stamped as
//!   soon as an earlier access in the block trains it — or *may* train it
//!   (an access whose own row was already stamped has an unknowable
//!   `y`, so its training decision is unknowable too and its row is
//!   stamped conservatively). The hot loop falls back to the scalar
//!   dot-product on stamp mismatch, which is always correct.
//!
//! The same stamping guards IDB peeks: every IDB update (unconditional
//! when the combined policy runs with >1 speculative bit) stamps its row,
//! so a staged peek is used only when no earlier access in the block
//! could have rewritten the entry.

use crate::counter::CounterConfig;
use crate::idb::{IdbConfig, IdbStats};
use crate::perceptron::{PerceptronConfig, PerceptronPredictor, PerceptronStats};

/// One staged memory access: the precomputed rows, dot-product, and IDB
/// peek [`PredictorBank::stage_block`] derived before the timing loop.
#[derive(Debug, Clone, Copy, Default)]
pub struct StagedAccess {
    /// Perceptron sum from the staged sweep (valid iff
    /// [`StagedAccess::P_VALID`]).
    pub y: i32,
    /// Perceptron row index (always valid — row hashing is stateless).
    pub prow: u32,
    /// IDB row index (always valid).
    pub irow: u32,
    /// Staged IDB delta (meaningful iff [`StagedAccess::I_VALID`] and
    /// [`StagedAccess::I_PRESENT`]).
    pub delta: u16,
    /// Validity flags ([`StagedAccess::P_VALID`] | [`StagedAccess::I_VALID`]
    /// | [`StagedAccess::I_PRESENT`]).
    pub flags: u8,
}

impl StagedAccess {
    /// The staged perceptron sum is valid: no earlier access in the block
    /// trained (or may have trained) this row.
    pub const P_VALID: u8 = 1 << 0;
    /// The staged IDB peek is valid: no earlier access in the block
    /// updated this IDB row.
    pub const I_VALID: u8 = 1 << 1;
    /// The staged IDB entry was populated (cold entries predict delta 0).
    pub const I_PRESENT: u8 = 1 << 2;
}

/// Per-block scratch for staged predictions: one [`StagedAccess`] per
/// memory access plus the per-row generation stamps. Reused across blocks
/// (the stamp arrays are epoch-tagged, so re-staging never clears them).
#[derive(Debug, Default)]
pub struct BlockPredictions {
    entries: Vec<StagedAccess>,
    pgen: Vec<u32>,
    igen: Vec<u32>,
    epoch: u32,
    /// Block-level index of the first staged access: the consumer indexes
    /// [`BlockPredictions::get`] with its running memory-access counter,
    /// and windowed staging re-stages a bounded slice at a time (keeping
    /// the scratch L1-cache-resident) rather than the whole block.
    base: usize,
    active: bool,
}

impl BlockPredictions {
    /// Empty, inactive scratch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reset for a new staged window over a bank with `rows` rows.
    fn begin(&mut self, rows: usize, base: usize) {
        self.entries.clear();
        self.base = base;
        self.active = false;
        if self.pgen.len() != rows {
            self.pgen = vec![0; rows];
            self.igen = vec![0; rows];
            self.epoch = 0;
        }
        if self.epoch == u32::MAX {
            self.pgen.fill(0);
            self.igen.fill(0);
            self.epoch = 1;
        } else {
            self.epoch += 1;
        }
    }

    /// The staged record for the block's `k`-th memory access, or `None`
    /// when staging is inactive (disabled policy/knob) or `k` falls
    /// outside the currently staged window.
    #[inline]
    pub fn get(&self, k: usize) -> Option<&StagedAccess> {
        if self.active {
            self.entries.get(k.wrapping_sub(self.base))
        } else {
            None
        }
    }

    /// Whether the scratch holds staged predictions for the current block.
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// Number of staged accesses in the current block.
    pub fn len(&self) -> usize {
        if self.active {
            self.entries.len()
        } else {
            0
        }
    }

    /// Whether no staged predictions are held.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop any staged predictions (ineligible policy or knob off).
    pub fn deactivate(&mut self) {
        self.active = false;
        self.entries.clear();
    }
}

/// The outcome of one fused combined-policy access (perceptron bypass +
/// IDB), mirroring exactly what the SIPT L1's `SiptCombined` arm needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CombinedOutcome {
    /// Bypass prediction: speculate with the virtual index bits.
    pub speculate: bool,
    /// Confidence margin `|y|` of the bypass prediction.
    pub margin: u64,
    /// IDB-predicted delta — meaningful only when the IDB was consulted
    /// (`!speculate` and the caller passed `want_idb`); 0 otherwise.
    pub delta: u64,
}

/// The fused, plane-interleaved predictor bank. See the module docs.
#[derive(Debug, Clone)]
pub struct PredictorBank {
    pcfg: PerceptronConfig,
    icfg: IdbConfig,
    ccfg: CounterConfig,
    // Derived constants cached out of the per-access path, as the scalar
    // predictors do.
    theta: i32,
    min_w: i32,
    max_w: i32,
    cmax: i32,
    cthresh: i32,
    imask: u64,
    /// Row stride in i32 slots: `(history + 3).next_power_of_two()`, so a
    /// default row (13 weights + IDB + counter) is exactly one 64-byte
    /// line.
    stride: usize,
    /// Stride offset of the IDB slot (`history + 1`).
    islot: usize,
    /// Stride offset of the counter slot (`history + 2`).
    cslot: usize,
    /// `rows × stride`, rows = max entries over the three planes.
    plane: Vec<i32>,
    history: u64,
    last_y: i32,
    stats: PerceptronStats,
    istats: IdbStats,
}

impl PredictorBank {
    /// Build a bank holding all three predictor planes.
    ///
    /// # Panics
    ///
    /// Same validity domain as the scalar constructors: every
    /// `entries` is positive, perceptron `history` ≤ 63, IDB delta
    /// width 1–16 bits, counter width 1–8 bits.
    pub fn new(pcfg: PerceptronConfig, icfg: IdbConfig, ccfg: CounterConfig) -> Self {
        assert!(pcfg.entries > 0, "need at least one perceptron");
        assert!(pcfg.history <= 63, "history must fit a u64");
        assert!(icfg.entries > 0, "need at least one entry");
        assert!(icfg.bits > 0 && icfg.bits <= 16, "delta width must be 1–16 bits");
        assert!(ccfg.entries > 0, "need at least one counter");
        assert!((1..=8).contains(&ccfg.bits), "counter width must be 1–8 bits");
        let h = pcfg.history;
        let stride = (h + 3).next_power_of_two();
        let rows = pcfg.entries.max(icfg.entries).max(ccfg.entries);
        let mut plane = vec![0i32; rows * stride];
        let weakly_taken = 1i32 << (ccfg.bits - 1);
        for r in 0..rows {
            // IDB cold sentinel (-1 never collides with a masked delta)
            // and the counter's weakly-speculate reset state.
            plane[r * stride + h + 1] = -1;
            plane[r * stride + h + 2] = weakly_taken;
        }
        let max_w = (1i32 << (pcfg.weight_bits - 1)) - 1;
        Self {
            theta: pcfg.theta(),
            min_w: -max_w - 1,
            max_w,
            cmax: ((1u32 << ccfg.bits) - 1) as i32,
            cthresh: 1i32 << (ccfg.bits - 1),
            imask: (1u64 << icfg.bits) - 1,
            stride,
            islot: h + 1,
            cslot: h + 2,
            plane,
            pcfg,
            icfg,
            ccfg,
            history: 0,
            last_y: 0,
            stats: PerceptronStats::default(),
            istats: IdbStats::default(),
        }
    }

    /// The perceptron configuration in force.
    pub fn perceptron_config(&self) -> &PerceptronConfig {
        &self.pcfg
    }

    /// The IDB configuration in force.
    pub fn idb_config(&self) -> &IdbConfig {
        &self.icfg
    }

    /// The counter configuration in force.
    pub fn counter_config(&self) -> &CounterConfig {
        &self.ccfg
    }

    /// Rows in the interleaved plane (max entries over the three tables).
    pub fn rows(&self) -> usize {
        self.plane.len() / self.stride
    }

    /// The shared xor-fold both folded planes key on (see
    /// `PerceptronPredictor::row` for why raw PCs alias).
    #[inline]
    fn fold(pc: u64) -> u64 {
        pc ^ (pc >> 6)
    }

    /// Map a folded (or raw, for the counter) PC onto a table of
    /// `entries` rows — mask when power-of-two, modulo otherwise,
    /// identical to each scalar predictor's `row`.
    #[inline]
    fn table_row(key: u64, entries: usize) -> usize {
        if entries.is_power_of_two() {
            (key as usize) & (entries - 1)
        } else {
            (key as usize) % entries
        }
    }

    #[inline]
    fn prow(&self, folded: u64) -> usize {
        Self::table_row(folded, self.pcfg.entries)
    }

    #[inline]
    fn irow(&self, folded: u64) -> usize {
        Self::table_row(folded, self.icfg.entries)
    }

    #[inline]
    fn crow(&self, pc: u64) -> usize {
        // Historical raw-PC index (no fold) — the counter ablation goldens
        // pin this.
        Self::table_row(pc, self.ccfg.entries)
    }

    /// `y = w0 + Σ xi·wi` over the row starting at `base`, with an
    /// explicit history (the staged sweep passes the simulated evolving
    /// history; live paths pass `self.history`).
    #[inline]
    fn dot_at(&self, base: usize, history: u64) -> i32 {
        let h = self.pcfg.history;
        let w = &self.plane[base..base + h + 1];
        match h {
            12 => PerceptronPredictor::dot_n::<12>(w, history),
            _ => {
                let mut y = w[0];
                for (i, &wi) in w.iter().enumerate().skip(1) {
                    let m = (((history >> (i - 1)) & 1) as i32).wrapping_sub(1);
                    y += (wi ^ m) - m;
                }
                y
            }
        }
    }

    /// The perceptron update half: train iff mispredicted or under θ,
    /// then shift the outcome into the global history — identical to
    /// `PerceptronPredictor::update` with the row already in hand.
    #[inline]
    fn train(&mut self, prow: usize, y: i32, unchanged: bool) {
        let t: i32 = if unchanged { 1 } else { -1 };
        if (y >= 0) != unchanged || y.abs() <= self.theta {
            self.stats.trainings += 1;
            let (min_w, max_w) = (self.min_w, self.max_w);
            let h = self.pcfg.history;
            let base = prow * self.stride;
            let w = &mut self.plane[base..base + h + 1];
            match h {
                12 => PerceptronPredictor::train_n::<12>(w, self.history, t, min_w, max_w),
                _ => {
                    w[0] = (w[0] + t).clamp(min_w, max_w);
                    let history = self.history;
                    for (i, wi) in w.iter_mut().enumerate().skip(1) {
                        let m = (((history >> (i - 1)) & 1) as i32).wrapping_sub(1);
                        let delta = (t ^ m) - m;
                        *wi = (*wi + delta).clamp(min_w, max_w);
                    }
                }
            }
        }
        self.history = (self.history << 1) | u64::from(unchanged);
    }

    /// Resolve the perceptron row and sum for one access: from the staged
    /// record when its stamp is still valid, else a live dot-product
    /// (reusing the staged row index when available — hashing is the only
    /// thing a stale stamp cannot invalidate).
    #[inline]
    fn resolve_y(&self, pc: u64, staged: Option<&StagedAccess>) -> (usize, i32) {
        match staged {
            Some(s) if s.flags & StagedAccess::P_VALID != 0 => (s.prow as usize, s.y),
            Some(s) => {
                let prow = s.prow as usize;
                (prow, self.dot_at(prow * self.stride, self.history))
            }
            None => {
                let prow = self.prow(Self::fold(pc));
                (prow, self.dot_at(prow * self.stride, self.history))
            }
        }
    }

    // -----------------------------------------------------------------
    // Fused per-access entry points
    // -----------------------------------------------------------------

    /// One perceptron bypass access: predict + margin + train in a single
    /// call with one row hash. Equivalent to the scalar sequence
    /// `predict(pc); last_margin(); update(pc, unchanged)` — including
    /// statistics. Returns `(speculate, margin)`.
    pub fn perceptron_access(
        &mut self,
        pc: u64,
        unchanged: bool,
        staged: Option<&StagedAccess>,
    ) -> (bool, u64) {
        let (prow, y) = self.resolve_y(pc, staged);
        self.stats.predictions += 1;
        self.last_y = y;
        let speculate = y >= 0;
        self.train(prow, y, unchanged);
        (speculate, u64::from(y.unsigned_abs()))
    }

    /// One counter bypass access: predict + margin + update with a single
    /// row hash and plane load. Equivalent to the scalar sequence
    /// `predict(pc); margin(pc); update(pc, unchanged)`. Returns
    /// `(speculate, margin)`.
    pub fn counter_access(&mut self, pc: u64, unchanged: bool) -> (bool, u64) {
        let slot = self.crow(pc) * self.stride + self.cslot;
        let c = self.plane[slot];
        let speculate = c >= self.cthresh;
        let margin =
            if speculate { (c - self.cthresh) as u64 } else { (self.cthresh - 1 - c) as u64 };
        self.plane[slot] = if unchanged { (c + 1).min(self.cmax) } else { (c - 1).max(0) };
        (speculate, margin)
    }

    /// One fused combined-policy access (perceptron bypass + IDB): the
    /// exact operation order of the scalar composition in the SIPT L1's
    /// `SiptCombined` arm — bypass predict, IDB predict (only when the
    /// bypass said wait *and* the caller wants the IDB), bypass train,
    /// IDB update (when `want_idb`) — with the shared fold hashed once
    /// and, in the default configuration, every plane touch on one cache
    /// line. `observed` is the resolved index delta (ignored unless
    /// `want_idb`).
    pub fn combined_access(
        &mut self,
        pc: u64,
        unchanged: bool,
        want_idb: bool,
        observed: u64,
        staged: Option<&StagedAccess>,
    ) -> CombinedOutcome {
        let (prow, irow, y) = match staged {
            Some(s) => {
                let prow = s.prow as usize;
                let y = if s.flags & StagedAccess::P_VALID != 0 {
                    s.y
                } else {
                    self.dot_at(prow * self.stride, self.history)
                };
                (prow, s.irow as usize, y)
            }
            None => {
                let folded = Self::fold(pc);
                let prow = self.prow(folded);
                (prow, self.irow(folded), self.dot_at(prow * self.stride, self.history))
            }
        };
        self.stats.predictions += 1;
        self.last_y = y;
        let speculate = y >= 0;
        let margin = u64::from(y.unsigned_abs());

        let islot = irow * self.stride + self.islot;
        let mut delta = 0u64;
        if !speculate && want_idb {
            // Staged peeks carry the entry contents; a stale stamp falls
            // back to the live slot. Statistics match `IndexDeltaBuffer::
            // predict` in either case.
            let v = match staged {
                Some(s) if s.flags & StagedAccess::I_VALID != 0 => {
                    if s.flags & StagedAccess::I_PRESENT != 0 {
                        i32::from(s.delta)
                    } else {
                        -1
                    }
                }
                _ => self.plane[islot],
            };
            if v >= 0 {
                self.istats.predictions += 1;
                delta = v as u64;
            } else {
                self.istats.cold += 1;
            }
        }

        self.train(prow, y, unchanged);

        if want_idb {
            let obs = (observed & self.imask) as i32;
            let v = self.plane[islot];
            if v != obs {
                if v >= 0 {
                    self.istats.delta_changes += 1;
                }
                self.plane[islot] = obs;
            }
        }
        CombinedOutcome { speculate, margin, delta }
    }

    // -----------------------------------------------------------------
    // Standalone IDB operations (counter-bypass combined configs and the
    // differential oracles use these; semantics match IndexDeltaBuffer)
    // -----------------------------------------------------------------

    /// Predicted delta for `pc` (0 when cold), counting statistics like
    /// `IndexDeltaBuffer::predict`.
    pub fn idb_predict(&mut self, pc: u64) -> u64 {
        let v = self.plane[self.irow(Self::fold(pc)) * self.stride + self.islot];
        if v >= 0 {
            self.istats.predictions += 1;
            v as u64
        } else {
            self.istats.cold += 1;
            0
        }
    }

    /// Record an observed delta, like `IndexDeltaBuffer::update`.
    pub fn idb_update(&mut self, pc: u64, observed_delta: u64) {
        let slot = self.irow(Self::fold(pc)) * self.stride + self.islot;
        let obs = (observed_delta & self.imask) as i32;
        let v = self.plane[slot];
        if v != obs {
            if v >= 0 {
                self.istats.delta_changes += 1;
            }
            self.plane[slot] = obs;
        }
    }

    /// `(bits + delta) mod 2^n` — the carry-free add of paper Fig 11.
    pub fn idb_apply(&self, va_index_bits: u64, delta: u64) -> u64 {
        (va_index_bits + delta) & self.imask
    }

    /// Stored delta for `pc` without touching statistics.
    pub fn idb_peek(&self, pc: u64) -> Option<u64> {
        let v = self.plane[self.irow(Self::fold(pc)) * self.stride + self.islot];
        (v >= 0).then_some(v as u64)
    }

    /// Confidence margin `|y|` of the most recent perceptron access.
    pub fn last_margin(&self) -> u64 {
        u64::from(self.last_y.unsigned_abs())
    }

    /// Perceptron statistics snapshot (oracle parity with
    /// `PerceptronPredictor::stats`).
    pub fn perceptron_stats(&self) -> PerceptronStats {
        self.stats
    }

    /// IDB statistics snapshot (oracle parity with
    /// `IndexDeltaBuffer::stats`).
    pub fn idb_stats(&self) -> IdbStats {
        self.istats
    }

    // -----------------------------------------------------------------
    // Block staging
    // -----------------------------------------------------------------

    /// Stage a window of accesses before the timing loop: for each
    /// `(pc, unchanged)` pair, precompute row indices, the perceptron
    /// dot-product against the exactly-simulated evolving history, and an
    /// IDB peek, with per-row generation stamps bounding each staged
    /// value's validity (see the module docs for the invalidation rules).
    /// `idb_active` must be true iff the consuming policy will update the
    /// IDB on every access (combined policy with >1 speculative bit).
    /// `base` is the block-level index of `pcs[0]` — the consumer's
    /// [`BlockPredictions::get`] key for the first staged access; windowed
    /// callers re-stage bounded slices mid-block (with the bank state
    /// exactly current at each window start) so the scratch stays cache-
    /// resident and stamps only need to cover within-window trainings.
    ///
    /// Read-only on the bank; all mutation stays in the timing loop, so a
    /// staged window can always fall back to the scalar path mid-block.
    ///
    /// # Panics
    ///
    /// Panics if `pcs` and `unchanged` lengths differ.
    pub fn stage_block(
        &self,
        pcs: &[u64],
        unchanged: &[bool],
        idb_active: bool,
        base: usize,
        out: &mut BlockPredictions,
    ) {
        assert_eq!(pcs.len(), unchanged.len(), "one outcome per staged access");
        out.begin(self.rows(), base);
        out.entries.reserve(pcs.len());
        let epoch = out.epoch;
        let mut hist = self.history;
        for (&pc, &un) in pcs.iter().zip(unchanged) {
            let folded = Self::fold(pc);
            let prow = self.prow(folded);
            let irow = self.irow(folded);
            let p_valid = out.pgen[prow] != epoch;
            // Only compute the dot-product when the hot loop can actually
            // consume it: a stamped row's staged sum is dead on arrival,
            // and — because an access whose own sum is unknowable must
            // stamp conservatively — a stamped row *stays* stamped for the
            // rest of the block. This bounds the staged dot work to the
            // accesses the timing loop would otherwise recompute live.
            let mut y = 0i32;
            if p_valid {
                y = self.dot_at(prow * self.stride, hist);
                // An access trains when it mispredicts or lands under θ.
                if ((y >= 0) != un) || y.abs() <= self.theta {
                    out.pgen[prow] = epoch;
                }
            }
            let i_valid = out.igen[irow] != epoch;
            let slot = if i_valid { self.plane[irow * self.stride + self.islot] } else { -1 };
            if idb_active {
                out.igen[irow] = epoch;
            }
            let mut flags = 0u8;
            flags |= u8::from(p_valid) * StagedAccess::P_VALID;
            flags |= u8::from(i_valid) * StagedAccess::I_VALID;
            flags |= u8::from(slot >= 0) * StagedAccess::I_PRESENT;
            out.entries.push(StagedAccess {
                y,
                prow: prow as u32,
                irow: irow as u32,
                delta: slot.max(0) as u16,
                flags,
            });
            hist = (hist << 1) | u64::from(un);
        }
        out.active = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_row_is_one_cache_line() {
        let bank = PredictorBank::new(
            PerceptronConfig::default(),
            IdbConfig::default(),
            CounterConfig::default(),
        );
        assert_eq!(bank.stride, 16, "h=12 rows must pack into 64 bytes");
        assert_eq!(bank.rows(), 64);
    }

    #[test]
    fn counter_plane_keeps_raw_pc_indexing() {
        let mut bank = PredictorBank::new(
            PerceptronConfig::default(),
            IdbConfig::default(),
            CounterConfig::default(),
        );
        // PCs 0x40 and 0x41 fold to different perceptron rows but the
        // counter must alias them exactly as the scalar table does:
        // raw pc & 63.
        let (_, m0) = bank.counter_access(0x1040, false);
        let (s1, _) = bank.counter_access(0x2040, false);
        assert_eq!(m0, 0);
        assert!(!s1, "0x2040 aliases 0x1040 in the raw-PC counter plane");
    }

    #[test]
    fn staged_block_matches_live_replay() {
        let pcs: Vec<u64> = (0..64u64).map(|i| 0x400100 + 4 * (i % 24)).collect();
        let outcomes: Vec<bool> = (0..64u64).map(|i| i % 3 != 0).collect();
        let mut live = PredictorBank::new(
            PerceptronConfig::default(),
            IdbConfig::default(),
            CounterConfig::default(),
        );
        let mut staged_bank = live.clone();
        let mut preds = BlockPredictions::new();
        staged_bank.stage_block(&pcs, &outcomes, true, 0, &mut preds);
        for (k, (&pc, &un)) in pcs.iter().zip(&outcomes).enumerate() {
            let a = live.combined_access(pc, un, true, u64::from(un), None);
            let b = staged_bank.combined_access(pc, un, true, u64::from(un), preds.get(k));
            assert_eq!(a, b, "access {k}");
        }
        assert_eq!(live.perceptron_stats(), staged_bank.perceptron_stats());
        assert_eq!(live.idb_stats(), staged_bank.idb_stats());
        assert_eq!(live.plane, staged_bank.plane);
        assert_eq!(live.history, staged_bank.history);
    }

    #[test]
    fn stamps_invalidate_same_row_reuse() {
        // Two accesses to the same (cold) row inside one block: the first
        // trains (|y| = 0 ≤ θ), so the second's staged sum must be
        // stamped invalid.
        let bank = PredictorBank::new(
            PerceptronConfig::default(),
            IdbConfig::default(),
            CounterConfig::default(),
        );
        let mut preds = BlockPredictions::new();
        bank.stage_block(&[0x10, 0x10], &[true, true], true, 0, &mut preds);
        let first = preds.get(0).unwrap();
        let second = preds.get(1).unwrap();
        assert!(first.flags & StagedAccess::P_VALID != 0);
        assert_eq!(first.flags & StagedAccess::I_VALID, StagedAccess::I_VALID);
        assert_eq!(second.flags & StagedAccess::P_VALID, 0, "first access trained the row");
        assert_eq!(second.flags & StagedAccess::I_VALID, 0, "first access updated the IDB row");
    }

    #[test]
    fn inactive_predictions_return_nothing() {
        let mut preds = BlockPredictions::new();
        assert!(preds.get(0).is_none());
        assert!(preds.is_empty());
        let bank = PredictorBank::new(
            PerceptronConfig::default(),
            IdbConfig::default(),
            CounterConfig::default(),
        );
        bank.stage_block(&[0x10], &[true], false, 0, &mut preds);
        assert!(preds.is_active());
        assert_eq!(preds.len(), 1);
        preds.deactivate();
        assert!(preds.get(0).is_none());
    }
}
