//! The perceptron speculation-bypass predictor of paper §V.
//!
//! A direct transcription of the smallest global-history perceptron
//! configuration of Jimenez & Lin (HPCA 2001), retargeted from branch
//! direction to "will the speculative index bits survive translation?":
//!
//! - 64 perceptrons, indexed by the memory operation's PC,
//! - history length h = 12; each perceptron holds h + 1 = 13 weights,
//! - 6-bit signed weights (saturating at [-32, 31]),
//! - training threshold θ = ⌊1.93·h + 14⌋ = 37,
//! - total storage 64 × 13 × 6 bits = 624 bytes — the figure the paper
//!   quotes for its overhead estimate.
//!
//! `y = w0 + Σ xi·wi` with bipolar history (taken = +1, not-taken = −1);
//! `y ≥ 0` predicts *speculate* (index bits unchanged), `y < 0` predicts
//! *bypass* (wait for translation).

/// Configuration of the perceptron predictor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PerceptronConfig {
    /// Number of perceptrons in the table (paper: 64).
    pub entries: usize,
    /// Global history length h (paper: 12, giving 13 weights).
    pub history: usize,
    /// Weight width in bits (paper: 6, i.e. [-32, 31]).
    pub weight_bits: u32,
}

impl Default for PerceptronConfig {
    fn default() -> Self {
        Self { entries: 64, history: 12, weight_bits: 6 }
    }
}

impl PerceptronConfig {
    /// Jimenez & Lin's training threshold θ = ⌊1.93·h + 14⌋.
    pub fn theta(&self) -> i32 {
        (1.93 * self.history as f64 + 14.0).floor() as i32
    }

    /// Total predictor storage in bits.
    pub fn storage_bits(&self) -> u64 {
        self.entries as u64 * (self.history as u64 + 1) * self.weight_bits as u64
    }

    /// Saturation bounds of a weight.
    fn weight_range(&self) -> (i32, i32) {
        let max = (1i32 << (self.weight_bits - 1)) - 1;
        (-max - 1, max)
    }
}

/// Training/usage counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PerceptronStats {
    /// Predictions made.
    pub predictions: u64,
    /// Updates that adjusted weights (mispredicted or |y| ≤ θ).
    pub trainings: u64,
}

/// The PC-indexed global-history perceptron predictor.
///
/// The caller must alternate [`PerceptronPredictor::predict`] and
/// [`PerceptronPredictor::update`] per access so training sees the same
/// history the prediction used.
///
/// ```
/// use sipt_predictors::{PerceptronPredictor, PerceptronConfig};
/// let mut p = PerceptronPredictor::new(PerceptronConfig::default());
/// // A PC whose index bits always survive translation trains to
/// // "speculate" and stays there.
/// for _ in 0..64 {
///     let _ = p.predict(0x400123);
///     p.update(0x400123, true);
/// }
/// assert!(p.predict(0x400123));
/// p.update(0x400123, true);
/// ```
#[derive(Debug, Clone)]
pub struct PerceptronPredictor {
    config: PerceptronConfig,
    // θ and the weight saturation bounds are pure functions of the
    // config; caching them here keeps the f64 θ formula and the shift
    // arithmetic out of the per-access update path.
    theta: i32,
    min_w: i32,
    max_w: i32,
    /// `entries × (history + 1)` weights, row-major; weight 0 is the bias.
    weights: Vec<i32>,
    /// Global history of speculation outcomes, most recent in bit 0
    /// (true = index bits unchanged).
    history: u64,
    /// Output of the most recent `predict`, consumed by `update`.
    last_y: i32,
    stats: PerceptronStats,
}

impl PerceptronPredictor {
    /// Create a zero-initialized predictor.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is 0 or `history` exceeds 63.
    pub fn new(config: PerceptronConfig) -> Self {
        assert!(config.entries > 0, "need at least one perceptron");
        assert!(config.history <= 63, "history must fit a u64");
        let (min_w, max_w) = config.weight_range();
        Self {
            weights: vec![0; config.entries * (config.history + 1)],
            theta: config.theta(),
            min_w,
            max_w,
            config,
            history: 0,
            last_y: 0,
            stats: PerceptronStats::default(),
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &PerceptronConfig {
        &self.config
    }

    #[inline]
    fn row(&self, pc: u64) -> usize {
        // Fold the high PC bits down before the modulo: raw
        // `pc % entries` with a power-of-two table maps 4-byte-aligned
        // (or strided) PCs onto a quarter of the rows, aliasing
        // unrelated instructions. The xor-fold keeps small-PC behaviour
        // identical (pc < 64 folds to itself) while spreading aligned
        // code over every row.
        let folded = pc ^ (pc >> 6);
        let entries = self.config.entries;
        // The default table (64) is a power of two: strength-reduce the
        // modulo to a mask so the hot path carries no integer division.
        if entries.is_power_of_two() {
            (folded as usize) & (entries - 1)
        } else {
            (folded as usize) % entries
        }
    }

    /// `y = w0 + Σ xi·wi` over one row. The bipolar multiply is a
    /// branchless sign-select: history bit set (+1) adds the weight,
    /// clear (−1) subtracts it — `(w ^ 0) - 0 = w`, `(w ^ -1) - (-1) =
    /// -w` in two's complement. Identical sums to the bipolar multiply,
    /// but the loop autovectorizes instead of branching per history bit.
    /// `H` is the compile-time history length so the default
    /// configuration's loop fully unrolls; `dot` dispatches on it.
    #[inline]
    pub(crate) fn dot_n<const H: usize>(w: &[i32], history: u64) -> i32 {
        let w = &w[..H + 1];
        let mut y = w[0]; // bias w0 (input hardwired to 1)
        for (i, &wi) in w.iter().enumerate().skip(1) {
            let m = (((history >> (i - 1)) & 1) as i32).wrapping_sub(1);
            y += (wi ^ m) - m;
        }
        y
    }

    /// One training step over a row — the bipolar delta uses the same
    /// branchless sign-select as [`Self::dot_n`]: agreement (+1) nudges
    /// toward `t`, disagreement (−1) away — identical deltas, and the
    /// constant-length clamp loop vectorizes.
    #[inline]
    pub(crate) fn train_n<const H: usize>(
        w: &mut [i32],
        history: u64,
        t: i32,
        min_w: i32,
        max_w: i32,
    ) {
        let w = &mut w[..H + 1];
        w[0] = (w[0] + t).clamp(min_w, max_w);
        for (i, wi) in w.iter_mut().enumerate().skip(1) {
            let m = (((history >> (i - 1)) & 1) as i32).wrapping_sub(1);
            let delta = (t ^ m) - m;
            *wi = (*wi + delta).clamp(min_w, max_w);
        }
    }

    fn dot(&self, pc: u64) -> i32 {
        let h = self.config.history;
        let base = self.row(pc) * (h + 1);
        let w = &self.weights[base..base + h + 1];
        match h {
            // The paper configuration (h = 12): constant trip count,
            // fully unrolled/vectorized.
            12 => Self::dot_n::<12>(w, self.history),
            _ => {
                let mut y = w[0];
                for (i, &wi) in w.iter().enumerate().skip(1) {
                    let m = (((self.history >> (i - 1)) & 1) as i32).wrapping_sub(1);
                    y += (wi ^ m) - m;
                }
                y
            }
        }
    }

    /// Predict whether to speculate for the access at `pc`. `true` means
    /// the speculative index bits are predicted to survive translation.
    ///
    /// The prediction uses only the PC and global history, so in hardware
    /// it starts before the address is generated — the property the paper
    /// stresses makes SIPT latency-free.
    pub fn predict(&mut self, pc: u64) -> bool {
        self.stats.predictions += 1;
        self.last_y = self.dot(pc);
        self.last_y >= 0
    }

    /// Train with the resolved outcome of the access whose prediction was
    /// just made: `unchanged` is true when the speculative bits survived
    /// translation. Also shifts the outcome into the global history.
    pub fn update(&mut self, pc: u64, unchanged: bool) {
        let t: i32 = if unchanged { 1 } else { -1 };
        let predicted_taken = self.last_y >= 0;
        if predicted_taken != unchanged || self.last_y.abs() <= self.theta {
            self.stats.trainings += 1;
            let (min_w, max_w) = (self.min_w, self.max_w);
            let h = self.config.history;
            let base = self.row(pc) * (h + 1);
            let w = &mut self.weights[base..base + h + 1];
            match h {
                12 => Self::train_n::<12>(w, self.history, t, min_w, max_w),
                _ => {
                    w[0] = (w[0] + t).clamp(min_w, max_w);
                    let history = self.history;
                    for (i, wi) in w.iter_mut().enumerate().skip(1) {
                        let m = (((history >> (i - 1)) & 1) as i32).wrapping_sub(1);
                        let delta = (t ^ m) - m;
                        *wi = (*wi + delta).clamp(min_w, max_w);
                    }
                }
            }
        }
        self.history = (self.history << 1) | (unchanged as u64);
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> PerceptronStats {
        self.stats
    }

    /// Confidence margin `|y|` of the most recent [`predict`] call: the
    /// distance of the perceptron sum from the decision boundary. Large
    /// margins mean a confident prediction (|y| > θ also means training
    /// stops); a margin of 0 is a coin flip. Telemetry correlates this
    /// against replays to reproduce the paper's accuracy analysis.
    ///
    /// [`predict`]: PerceptronPredictor::predict
    pub fn last_margin(&self) -> u64 {
        u64::from(self.last_y.unsigned_abs())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use sipt_rng::{Rng, SeedableRng, StdRng};

    #[test]
    fn paper_storage_budget() {
        let cfg = PerceptronConfig::default();
        assert_eq!(cfg.storage_bits(), 4992); // = 624 bytes
        assert_eq!(cfg.storage_bits() / 8, 624);
        assert_eq!(cfg.theta(), 37);
    }

    #[test]
    fn learns_always_unchanged() {
        let mut p = PerceptronPredictor::new(PerceptronConfig::default());
        let mut correct = 0;
        for _ in 0..200 {
            if p.predict(0x1000) {
                correct += 1;
            }
            p.update(0x1000, true);
        }
        assert!(correct >= 195, "correct = {correct}");
    }

    #[test]
    fn learns_always_changed() {
        let mut p = PerceptronPredictor::new(PerceptronConfig::default());
        let mut correct = 0;
        for _ in 0..200 {
            if !p.predict(0x2000) {
                correct += 1;
            }
            p.update(0x2000, false);
        }
        assert!(correct >= 190, "correct = {correct}");
    }

    #[test]
    fn learns_alternating_pattern_from_history() {
        // Strict alternation is linearly separable on one history bit, so
        // the perceptron must learn it near-perfectly — this is exactly
        // what distinguishes it from a per-PC counter.
        let mut p = PerceptronPredictor::new(PerceptronConfig::default());
        let mut correct = 0;
        let total = 400;
        for i in 0..total {
            let outcome = i % 2 == 0;
            if p.predict(0x3000) == outcome {
                correct += 1;
            }
            p.update(0x3000, outcome);
        }
        assert!(correct as f64 / total as f64 > 0.9, "accuracy = {correct}/{total}");
    }

    #[test]
    fn distinct_pcs_learn_independently() {
        let mut p = PerceptronPredictor::new(PerceptronConfig::default());
        for _ in 0..100 {
            p.predict(0);
            p.update(0, true);
            p.predict(1);
            p.update(1, false);
        }
        assert!(p.predict(0));
        p.update(0, true);
        assert!(!p.predict(1));
        p.update(1, false);
    }

    #[test]
    fn weights_saturate_within_bit_budget() {
        let mut p = PerceptronPredictor::new(PerceptronConfig::default());
        for _ in 0..10_000 {
            p.predict(7);
            p.update(7, true);
        }
        let (min_w, max_w) = (-32, 31);
        for &w in &p.weights {
            assert!(w >= min_w && w <= max_w, "weight {w} escaped 6-bit range");
        }
    }

    #[test]
    fn random_outcomes_hover_near_chance_without_panicking() {
        let mut p = PerceptronPredictor::new(PerceptronConfig::default());
        let mut rng = StdRng::seed_from_u64(11);
        let mut correct = 0u32;
        for _ in 0..2000 {
            let outcome = rng.gen_bool(0.5);
            if p.predict(0x40) == outcome {
                correct += 1;
            }
            p.update(0x40, outcome);
        }
        let acc = correct as f64 / 2000.0;
        assert!((0.35..0.65).contains(&acc), "accuracy on noise = {acc}");
    }

    #[test]
    fn margin_grows_with_training_confidence() {
        let mut p = PerceptronPredictor::new(PerceptronConfig::default());
        let _ = p.predict(0x9);
        let cold = p.last_margin();
        assert_eq!(cold, 0, "zero-initialized perceptron has no confidence");
        for _ in 0..200 {
            let _ = p.predict(0x9);
            p.update(0x9, true);
        }
        let _ = p.predict(0x9);
        assert!(
            p.last_margin() > PerceptronConfig::default().theta() as u64,
            "trained margin {} should exceed θ",
            p.last_margin()
        );
    }

    /// Regression: with the raw `(pc as usize) % entries` row index, a
    /// stream of 4-byte-aligned PCs (real instruction addresses) could
    /// only ever reach a quarter of a 64-entry table. The folded index
    /// must make every row reachable.
    #[test]
    fn aligned_pcs_reach_every_row() {
        let p = PerceptronPredictor::new(PerceptronConfig::default());
        let rows: std::collections::BTreeSet<usize> =
            (0..256u64).map(|i| p.row(0x0040_0000 + 4 * i)).collect();
        assert_eq!(
            rows.len(),
            64,
            "4-byte-aligned PCs must reach all 64 rows, reached {}: {rows:?}",
            rows.len()
        );
    }

    #[test]
    fn stats_count_predictions_and_trainings() {
        let mut p = PerceptronPredictor::new(PerceptronConfig::default());
        p.predict(1);
        p.update(1, true);
        let s = p.stats();
        assert_eq!(s.predictions, 1);
        assert_eq!(s.trainings, 1, "cold perceptron must train (|y| ≤ θ)");
    }

    proptest! {
        /// The predictor never panics and history stays bounded for any
        /// PC/outcome stream.
        #[test]
        fn robust_to_arbitrary_streams(
            ops in proptest::collection::vec((any::<u64>(), any::<bool>()), 1..200)
        ) {
            let mut p = PerceptronPredictor::new(PerceptronConfig::default());
            for (pc, outcome) in ops {
                let _ = p.predict(pc);
                p.update(pc, outcome);
            }
        }
    }
}
