#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # sipt-predictors — the prediction structures of the SIPT paper
//!
//! Three PC-indexed predictors, none of which consumes the virtual address,
//! so all of them can run at fetch/decode — before address generation —
//! which is why SIPT adds no latency to the L1 access path:
//!
//! - [`PerceptronPredictor`]: the §V speculation-*bypass* predictor, a
//!   64-entry Jimenez–Lin global-history perceptron (624 B),
//! - [`IndexDeltaBuffer`]: the §VI BTB-like table predicting the VA→PA
//!   *delta* of the speculative index bits,
//! - [`CounterPredictor`]: the saturating-counter alternative the paper
//!   rejected (~85% accuracy vs >90%), kept for the ablation bench.
//!
//! The composition of perceptron + IDB into the paper's three SIPT
//! variants lives in `sipt-core`.
//!
//! [`PredictorBank`] fuses all three tables into one plane-interleaved
//! SoA with a shared row hash and a block-staged front-end
//! ([`PredictorBank::stage_block`]); the scalar types above are retained
//! as its differential oracles.

pub mod bank;
pub mod counter;
pub mod idb;
pub mod perceptron;

pub use bank::{BlockPredictions, CombinedOutcome, PredictorBank, StagedAccess};
pub use counter::{CounterConfig, CounterPredictor};
pub use idb::{IdbConfig, IdbStats, IndexDeltaBuffer};
pub use perceptron::{PerceptronConfig, PerceptronPredictor, PerceptronStats};
