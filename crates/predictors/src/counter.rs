//! PC-indexed saturating-counter bypass predictor.
//!
//! The paper reports experimenting with "simpler counter-based predictors"
//! whose accuracy (~85%) was inferior and inconsistent compared to the
//! perceptron (>90%); this implementation exists to reproduce that
//! ablation (`ablation_bypass` bench).

/// Configuration of the counter predictor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterConfig {
    /// Number of counters.
    pub entries: usize,
    /// Counter width in bits (2 → classic bimodal).
    pub bits: u32,
}

impl Default for CounterConfig {
    fn default() -> Self {
        Self { entries: 64, bits: 2 }
    }
}

/// A table of saturating up/down counters indexed by PC.
///
/// ```
/// use sipt_predictors::{CounterPredictor, CounterConfig};
/// let mut c = CounterPredictor::new(CounterConfig::default());
/// assert!(c.predict(0x10)); // optimistic reset state
/// c.update(0x10, false);
/// c.update(0x10, false);
/// assert!(!c.predict(0x10));
/// ```
#[derive(Debug, Clone)]
pub struct CounterPredictor {
    config: CounterConfig,
    counters: Vec<u8>,
}

impl CounterPredictor {
    /// Create a predictor with counters initialized to weakly-speculate.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is 0 or `bits` is not in 1..=8.
    pub fn new(config: CounterConfig) -> Self {
        assert!(config.entries > 0, "need at least one counter");
        assert!((1..=8).contains(&config.bits), "counter width must be 1–8 bits");
        let weakly_taken = 1u8 << (config.bits - 1);
        Self { counters: vec![weakly_taken; config.entries], config }
    }

    /// The configuration in force.
    pub fn config(&self) -> &CounterConfig {
        &self.config
    }

    #[inline]
    fn row(&self, pc: u64) -> usize {
        // Mask instead of modulo for power-of-two tables (the default),
        // keeping integer division off the per-access path.
        let entries = self.config.entries;
        if entries.is_power_of_two() {
            (pc as usize) & (entries - 1)
        } else {
            (pc as usize) % entries
        }
    }

    #[inline]
    fn max(&self) -> u8 {
        ((1u16 << self.config.bits) - 1) as u8
    }

    /// Predict whether to speculate for `pc` (counter in the upper half).
    pub fn predict(&self, pc: u64) -> bool {
        self.counters[self.row(pc)] >= 1 << (self.config.bits - 1)
    }

    /// Train with the resolved outcome.
    pub fn update(&mut self, pc: u64, unchanged: bool) {
        let row = self.row(pc);
        let c = self.counters[row];
        self.counters[row] = if unchanged { (c + 1).min(self.max()) } else { c.saturating_sub(1) };
    }

    /// Total storage in bits.
    pub fn storage_bits(&self) -> u64 {
        self.config.entries as u64 * self.config.bits as u64
    }

    /// Confidence margin of the prediction for `pc`: how many steps the
    /// counter sits from the decision threshold (0 = weakest state on
    /// either side, `2^(bits-1) - 1` = fully saturated). The counter
    /// analogue of [`crate::PerceptronPredictor::last_margin`].
    pub fn margin(&self, pc: u64) -> u64 {
        let c = i32::from(self.counters[self.row(pc)]);
        let threshold = 1i32 << (self.config.bits - 1);
        if c >= threshold {
            (c - threshold) as u64
        } else {
            (threshold - 1 - c) as u64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saturates_both_directions() {
        let mut c = CounterPredictor::new(CounterConfig::default());
        for _ in 0..10 {
            c.update(0, true);
        }
        assert!(c.predict(0));
        for _ in 0..10 {
            c.update(0, false);
        }
        assert!(!c.predict(0));
        // One positive outcome must not flip a saturated-down counter.
        c.update(0, true);
        assert!(!c.predict(0));
    }

    #[test]
    fn fails_on_alternation_where_perceptron_succeeds() {
        // The structural weakness the paper observed: a 2-bit counter
        // cannot track alternating outcomes.
        let mut c = CounterPredictor::new(CounterConfig::default());
        let mut correct = 0;
        let total = 400;
        for i in 0..total {
            let outcome = i % 2 == 0;
            if c.predict(0x3000) == outcome {
                correct += 1;
            }
            c.update(0x3000, outcome);
        }
        let acc = correct as f64 / total as f64;
        assert!(acc < 0.7, "counter should struggle with alternation, got {acc}");
    }

    #[test]
    fn margin_reflects_counter_distance() {
        let mut c = CounterPredictor::new(CounterConfig::default());
        assert_eq!(c.margin(0), 0, "weakly-speculate reset state");
        for _ in 0..5 {
            c.update(0, true);
        }
        assert_eq!(c.margin(0), 1, "saturated 2-bit counter: one step above threshold");
        for _ in 0..10 {
            c.update(0, false);
        }
        assert_eq!(c.margin(0), 1, "saturated down: one step below threshold");
        c.update(0, true);
        assert_eq!(c.margin(0), 0, "back to the weakest not-speculate state");
    }

    #[test]
    fn storage_accounting() {
        let c = CounterPredictor::new(CounterConfig { entries: 64, bits: 2 });
        assert_eq!(c.storage_bits(), 128);
    }

    #[test]
    #[should_panic(expected = "counter width")]
    fn zero_width_rejected() {
        let _ = CounterPredictor::new(CounterConfig { entries: 4, bits: 0 });
    }
}
