//! An order-insensitive set with O(1) insert, remove, membership test, and
//! random choice. Used by the buddy allocator's per-order free lists, where
//! we need both fast buddy-merge lookups and fast random victim selection
//! (for the fragmentation injector).

use std::collections::HashMap;

/// A set of `u64` values supporting O(1) insert/remove/contains and O(1)
/// uniform random sampling.
///
/// ```
/// use sipt_mem::indexed_set::IndexedSet;
/// let mut s = IndexedSet::new();
/// s.insert(3);
/// s.insert(7);
/// assert!(s.contains(3));
/// assert!(s.remove(3));
/// assert!(!s.contains(3));
/// assert_eq!(s.len(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct IndexedSet {
    items: Vec<u64>,
    index: HashMap<u64, usize>,
}

impl IndexedSet {
    /// Create an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Whether `value` is present.
    pub fn contains(&self, value: u64) -> bool {
        self.index.contains_key(&value)
    }

    /// Insert `value`; returns `true` if it was newly inserted.
    pub fn insert(&mut self, value: u64) -> bool {
        if self.index.contains_key(&value) {
            return false;
        }
        self.index.insert(value, self.items.len());
        self.items.push(value);
        true
    }

    /// Remove `value`; returns `true` if it was present.
    pub fn remove(&mut self, value: u64) -> bool {
        match self.index.remove(&value) {
            None => false,
            Some(pos) => {
                let last = self.items.pop().expect("index and items in sync");
                if pos < self.items.len() {
                    self.items[pos] = last;
                    self.index.insert(last, pos);
                }
                true
            }
        }
    }

    /// Remove and return an arbitrary element (LIFO order). `None` if empty.
    pub fn pop(&mut self) -> Option<u64> {
        let value = self.items.pop()?;
        self.index.remove(&value);
        Some(value)
    }

    /// The element at internal position `i` (0 ≤ i < len). Positions are
    /// not stable across mutation; useful only for random sampling.
    pub fn get_at(&self, i: usize) -> Option<u64> {
        self.items.get(i).copied()
    }

    /// Iterate over the elements in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        self.items.iter().copied()
    }
}

impl FromIterator<u64> for IndexedSet {
    fn from_iter<T: IntoIterator<Item = u64>>(iter: T) -> Self {
        let mut s = Self::new();
        for v in iter {
            s.insert(v);
        }
        s
    }
}

impl Extend<u64> for IndexedSet {
    fn extend<T: IntoIterator<Item = u64>>(&mut self, iter: T) {
        for v in iter {
            self.insert(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashSet;

    #[test]
    fn insert_remove_contains() {
        let mut s = IndexedSet::new();
        assert!(s.insert(1));
        assert!(!s.insert(1));
        assert!(s.contains(1));
        assert!(s.remove(1));
        assert!(!s.remove(1));
        assert!(s.is_empty());
    }

    #[test]
    fn swap_remove_keeps_index_consistent() {
        let mut s: IndexedSet = (0..100).collect();
        // Remove from the middle repeatedly; every remaining element must
        // still be findable.
        for v in (0..100).step_by(3) {
            assert!(s.remove(v));
        }
        for v in 0..100u64 {
            assert_eq!(s.contains(v), v % 3 != 0);
        }
    }

    #[test]
    fn pop_drains_everything() {
        let mut s: IndexedSet = (0..50).collect();
        let mut seen = HashSet::new();
        while let Some(v) = s.pop() {
            assert!(seen.insert(v));
        }
        assert_eq!(seen.len(), 50);
    }

    proptest! {
        #[test]
        fn behaves_like_hashset(ops in proptest::collection::vec((any::<bool>(), 0u64..64), 0..200)) {
            let mut model = HashSet::new();
            let mut sut = IndexedSet::new();
            for (is_insert, v) in ops {
                if is_insert {
                    prop_assert_eq!(sut.insert(v), model.insert(v));
                } else {
                    prop_assert_eq!(sut.remove(v), model.remove(&v));
                }
                prop_assert_eq!(sut.len(), model.len());
            }
            for v in 0..64 {
                prop_assert_eq!(sut.contains(v), model.contains(&v));
            }
        }
    }
}
