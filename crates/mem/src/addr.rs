//! Address and page-number newtypes.
//!
//! The whole simulator distinguishes virtual from physical addresses at the
//! type level ([`VirtAddr`] vs [`PhysAddr`]) so that an index computed from
//! the wrong address space is a compile error, not a silent bug. Page
//! numbers get the same treatment ([`VirtPageNum`] / [`PhysFrameNum`]).

use core::fmt;

/// Log2 of the base page size (4 KiB).
pub const PAGE_SHIFT: u32 = 12;
/// Base page size in bytes (4 KiB).
pub const PAGE_SIZE: u64 = 1 << PAGE_SHIFT;
/// Log2 of the huge page size (2 MiB).
pub const HUGE_PAGE_SHIFT: u32 = 21;
/// Huge page size in bytes (2 MiB).
pub const HUGE_PAGE_SIZE: u64 = 1 << HUGE_PAGE_SHIFT;
/// Number of base pages per huge page (512).
pub const PAGES_PER_HUGE_PAGE: u64 = 1 << (HUGE_PAGE_SHIFT - PAGE_SHIFT);

/// Page granularity of a mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PageSize {
    /// A base 4 KiB page.
    Base4K,
    /// A transparent 2 MiB huge page.
    Huge2M,
}

impl PageSize {
    /// Size of this page in bytes.
    #[inline]
    pub fn bytes(self) -> u64 {
        match self {
            PageSize::Base4K => PAGE_SIZE,
            PageSize::Huge2M => HUGE_PAGE_SIZE,
        }
    }

    /// Log2 of the page size.
    #[inline]
    pub fn shift(self) -> u32 {
        match self {
            PageSize::Base4K => PAGE_SHIFT,
            PageSize::Huge2M => HUGE_PAGE_SHIFT,
        }
    }

    /// Number of address bits guaranteed unchanged by translation: the
    /// page-offset width. For a huge page this is 21, so up to 9 bits beyond
    /// the 4 KiB offset are translation-invariant (the paper's "hugepage
    /// (9-bit)" bar in Fig 5).
    #[inline]
    pub fn offset_bits(self) -> u32 {
        self.shift()
    }
}

impl fmt::Display for PageSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PageSize::Base4K => write!(f, "4KiB"),
            PageSize::Huge2M => write!(f, "2MiB"),
        }
    }
}

macro_rules! addr_type {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(pub u64);

        impl $name {
            /// Construct from a raw 64-bit address value.
            #[inline]
            pub const fn new(raw: u64) -> Self {
                Self(raw)
            }

            /// The raw 64-bit address value.
            #[inline]
            pub const fn raw(self) -> u64 {
                self.0
            }

            /// Offset within the enclosing 4 KiB page.
            #[inline]
            pub const fn page_offset(self) -> u64 {
                self.0 & (PAGE_SIZE - 1)
            }

            /// Offset within the enclosing page of the given size.
            #[inline]
            pub fn offset_in(self, size: PageSize) -> u64 {
                self.0 & (size.bytes() - 1)
            }

            /// Extract `n` *index bits* immediately above the 4 KiB page
            /// offset: bits `[PAGE_SHIFT, PAGE_SHIFT + n)`. These are the
            /// bits SIPT speculates on.
            ///
            /// # Panics
            ///
            /// Panics if `n > 16` (SIPT uses at most a handful of bits).
            #[inline]
            pub fn index_bits(self, n: u32) -> u64 {
                assert!(n <= 16, "at most 16 speculative index bits supported");
                (self.0 >> PAGE_SHIFT) & ((1u64 << n) - 1)
            }

            /// Align this address down to the given page size boundary.
            #[inline]
            pub fn align_down(self, size: PageSize) -> Self {
                Self(self.0 & !(size.bytes() - 1))
            }

            /// Align this address up to the given page size boundary.
            #[inline]
            pub fn align_up(self, size: PageSize) -> Self {
                let mask = size.bytes() - 1;
                Self(self.0.checked_add(mask).expect("address overflow") & !mask)
            }

            /// Whether this address is aligned to the given page size.
            #[inline]
            pub fn is_aligned(self, size: PageSize) -> bool {
                self.0 & (size.bytes() - 1) == 0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{:#x}", self.0)
            }
        }

        impl fmt::LowerHex for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::LowerHex::fmt(&self.0, f)
            }
        }

        impl fmt::UpperHex for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::UpperHex::fmt(&self.0, f)
            }
        }

        impl fmt::Binary for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::Binary::fmt(&self.0, f)
            }
        }

        impl core::ops::Add<u64> for $name {
            type Output = Self;
            #[inline]
            fn add(self, rhs: u64) -> Self {
                Self(self.0 + rhs)
            }
        }

        impl core::ops::Sub<u64> for $name {
            type Output = Self;
            #[inline]
            fn sub(self, rhs: u64) -> Self {
                Self(self.0 - rhs)
            }
        }
    };
}

addr_type! {
    /// A virtual (program-visible) byte address.
    ///
    /// ```
    /// use sipt_mem::VirtAddr;
    /// let va = VirtAddr::new(0x7f00_1234);
    /// assert_eq!(va.page_offset(), 0x234);
    /// assert_eq!(va.index_bits(3), 0x1); // bits [12,15) of 0x7f001234
    /// ```
    VirtAddr
}

addr_type! {
    /// A physical (post-translation) byte address.
    ///
    /// ```
    /// use sipt_mem::PhysAddr;
    /// let pa = PhysAddr::new(0x3000);
    /// assert_eq!(pa.index_bits(2), 0b11);
    /// ```
    PhysAddr
}

impl VirtAddr {
    /// The enclosing 4 KiB virtual page number.
    ///
    /// This is the block-replay kernel's run-coalescing key: consecutive
    /// accesses whose `vpn()` matches share one TLB probe, because a
    /// repeated probe of an entry that is already MRU of its set cannot
    /// change TLB state.
    ///
    /// ```
    /// use sipt_mem::{VirtAddr, VirtPageNum};
    /// assert_eq!(VirtAddr::new(0x7f00_1234).vpn(), VirtPageNum::new(0x7f001));
    /// assert_eq!(VirtAddr::new(0x7f00_1fff).vpn(), VirtAddr::new(0x7f00_1000).vpn());
    /// ```
    #[inline]
    pub const fn vpn(self) -> VirtPageNum {
        VirtPageNum::containing(self)
    }
}

macro_rules! page_num_type {
    ($(#[$doc:meta])* $name:ident => $addr:ident) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(pub u64);

        impl $name {
            /// Construct from a raw page/frame number.
            #[inline]
            pub const fn new(raw: u64) -> Self {
                Self(raw)
            }

            /// The raw page/frame number.
            #[inline]
            pub const fn raw(self) -> u64 {
                self.0
            }

            /// The byte address of the first byte of this page.
            #[inline]
            pub const fn base(self) -> $addr {
                $addr(self.0 << PAGE_SHIFT)
            }

            /// The page containing the given byte address.
            #[inline]
            pub const fn containing(addr: $addr) -> Self {
                Self(addr.0 >> PAGE_SHIFT)
            }

            /// Low `n` bits of the page number — exactly the bits SIPT
            /// speculates on, expressed at page granularity.
            #[inline]
            pub fn low_bits(self, n: u32) -> u64 {
                self.0 & ((1u64 << n) - 1)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}#{}", stringify!($name), self.0)
            }
        }

        impl core::ops::Add<u64> for $name {
            type Output = Self;
            #[inline]
            fn add(self, rhs: u64) -> Self {
                Self(self.0 + rhs)
            }
        }
    };
}

page_num_type! {
    /// A virtual page number (VA >> 12).
    VirtPageNum => VirtAddr
}

page_num_type! {
    /// A physical frame number (PA >> 12).
    PhysFrameNum => PhysAddr
}

/// The result of translating a [`VirtAddr`] through a page table or TLB.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Translation {
    /// The translated physical address.
    pub pa: PhysAddr,
    /// The physical frame backing the 4 KiB page of the access.
    pub pfn: PhysFrameNum,
    /// The granularity of the mapping that produced this translation.
    pub page_size: PageSize,
}

impl Translation {
    /// Whether the `n` index bits above the page offset are identical
    /// between `va` and the translated physical address — i.e. whether a
    /// naive SIPT speculation on this access would succeed.
    #[inline]
    pub fn index_bits_unchanged(&self, va: VirtAddr, n: u32) -> bool {
        va.index_bits(n) == self.pa.index_bits(n)
    }

    /// The delta, modulo `2^n`, that must be added to the `n` speculative
    /// index bits of `va` to obtain the physical index bits. This is the
    /// quantity the IDB learns.
    #[inline]
    pub fn index_delta(&self, va: VirtAddr, n: u32) -> u64 {
        let mask = (1u64 << n) - 1;
        self.pa.index_bits(n).wrapping_sub(va.index_bits(n)) & mask
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_offset_and_index_bits() {
        let va = VirtAddr::new(0x0001_2345);
        assert_eq!(va.page_offset(), 0x345);
        // Bits [12..15) of 0x12345: 0x12345 >> 12 = 0x12, low 3 bits = 0b010.
        assert_eq!(va.index_bits(3), 0b010);
        assert_eq!(va.index_bits(1), 0b0);
        assert_eq!(va.index_bits(0), 0);
    }

    #[test]
    fn alignment() {
        let va = VirtAddr::new(0x1234);
        assert_eq!(va.align_down(PageSize::Base4K).raw(), 0x1000);
        assert_eq!(va.align_up(PageSize::Base4K).raw(), 0x2000);
        assert!(VirtAddr::new(0x20_0000).is_aligned(PageSize::Huge2M));
        assert!(!VirtAddr::new(0x10_0000).is_aligned(PageSize::Huge2M));
        assert_eq!(VirtAddr::new(0x20_0000).align_up(PageSize::Huge2M).raw(), 0x20_0000);
    }

    #[test]
    fn page_numbers_roundtrip() {
        let va = VirtAddr::new(0xdead_b000);
        let vpn = VirtPageNum::containing(va);
        assert_eq!(vpn.raw(), 0xdeadb);
        assert_eq!(vpn.base(), VirtAddr::new(0xdead_b000));
    }

    #[test]
    fn translation_unchanged_and_delta() {
        // VA page 0b0110, PA frame 0b0110: all bits unchanged.
        let va = VirtAddr::new(0b0110 << PAGE_SHIFT | 0x42);
        let t = Translation {
            pa: PhysAddr::new(0b0110 << PAGE_SHIFT | 0x42),
            pfn: PhysFrameNum::new(0b0110),
            page_size: PageSize::Base4K,
        };
        assert!(t.index_bits_unchanged(va, 3));
        assert_eq!(t.index_delta(va, 3), 0);

        // PA frame 0b1010: bit 2 differs, delta = 0b100 mod 8.
        let t2 = Translation {
            pa: PhysAddr::new(0b1010 << PAGE_SHIFT | 0x42),
            pfn: PhysFrameNum::new(0b1010),
            page_size: PageSize::Base4K,
        };
        assert!(!t2.index_bits_unchanged(va, 3));
        assert!(t2.index_bits_unchanged(va, 2));
        assert_eq!(t2.index_delta(va, 3), 0b100);
    }

    #[test]
    fn index_delta_wraps_modulo() {
        // VA bits 0b111, PA bits 0b001: delta = 1 - 7 mod 8 = 2.
        let va = VirtAddr::new(0b111 << PAGE_SHIFT);
        let t = Translation {
            pa: PhysAddr::new(0b001 << PAGE_SHIFT),
            pfn: PhysFrameNum::new(1),
            page_size: PageSize::Base4K,
        };
        assert_eq!(t.index_delta(va, 3), 2);
        // Applying the delta recovers the PA bits.
        let predicted = (va.index_bits(3) + t.index_delta(va, 3)) & 0b111;
        assert_eq!(predicted, t.pa.index_bits(3));
    }

    #[test]
    fn huge_page_constants() {
        assert_eq!(PAGES_PER_HUGE_PAGE, 512);
        assert_eq!(PageSize::Huge2M.offset_bits() - PageSize::Base4K.offset_bits(), 9);
    }

    #[test]
    fn display_formats_nonempty() {
        assert_eq!(format!("{}", VirtAddr::new(0x10)), "0x10");
        assert_eq!(format!("{:x}", PhysAddr::new(255)), "ff");
        assert_eq!(format!("{:b}", PhysAddr::new(5)), "101");
        assert!(!format!("{}", PageSize::Huge2M).is_empty());
    }
}
