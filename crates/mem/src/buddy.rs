//! A Linux-style binary buddy allocator over physical page frames.
//!
//! Free frames are grouped into blocks of 2^order contiguous frames
//! (order 0..=[`MAX_ORDER`], i.e. 4 KiB up to 4 MiB), one free list per
//! order, exactly as in the kernel's page allocator. Allocation splits the
//! smallest sufficient block; freeing merges a block with its buddy when the
//! buddy is also free.
//!
//! This allocator is the root cause of SIPT's index-bit predictability:
//! bulk allocations are served from large contiguous blocks, so consecutive
//! virtual pages land in consecutive physical frames and the VA→PA delta is
//! constant across the block (paper §VI, Fig 10).

use crate::addr::PhysFrameNum;
use crate::indexed_set::IndexedSet;
use crate::MemError;
use sipt_rng::Rng;

/// Largest block order managed by the allocator (2^10 pages = 4 MiB),
/// matching Linux's `MAX_ORDER` free-list span of 1..=1024 pages described
/// in the paper.
pub const MAX_ORDER: u32 = 10;

/// Order of a 2 MiB huge-page block (512 base pages).
pub const HUGE_PAGE_ORDER: u32 = 9;

/// A block of `2^order` physically contiguous frames handed out by the
/// allocator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FrameBlock {
    /// First frame of the block. Always aligned to `2^order` frames.
    pub start: PhysFrameNum,
    /// Log2 of the block length in frames.
    pub order: u32,
}

impl FrameBlock {
    /// Number of 4 KiB frames in this block.
    #[inline]
    pub fn len(&self) -> u64 {
        1u64 << self.order
    }

    /// Whether the block is empty (never true for a valid block).
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Iterate over the frames of the block in ascending order.
    pub fn frames(&self) -> impl Iterator<Item = PhysFrameNum> {
        let start = self.start.raw();
        (start..start + self.len()).map(PhysFrameNum::new)
    }
}

/// Occupancy and fragmentation statistics for a [`BuddyAllocator`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BuddyStats {
    /// Total frames managed.
    pub total_frames: u64,
    /// Frames currently free.
    pub free_frames: u64,
    /// Free block count per order (`k_i` in the paper's Fu formula).
    pub free_blocks_per_order: Vec<u64>,
}

/// A fixed-size bitmap tracking which frames are allocated, used to catch
/// double frees and frees of never-allocated frames at their source.
#[derive(Debug, Clone)]
struct FrameBitmap {
    words: Vec<u64>,
}

impl FrameBitmap {
    fn new(frames: u64) -> Self {
        Self { words: vec![0; frames.div_ceil(64) as usize] }
    }

    #[inline]
    fn set(&mut self, frame: u64) {
        self.words[(frame / 64) as usize] |= 1 << (frame % 64);
    }

    #[inline]
    fn clear(&mut self, frame: u64) {
        self.words[(frame / 64) as usize] &= !(1 << (frame % 64));
    }

    #[inline]
    fn test(&self, frame: u64) -> bool {
        self.words[(frame / 64) as usize] & (1 << (frame % 64)) != 0
    }
}

/// The binary buddy allocator.
///
/// ```
/// use sipt_mem::buddy::BuddyAllocator;
/// let mut buddy = BuddyAllocator::new(1024); // 4 MiB of frames
/// let huge = buddy.alloc(9).unwrap();        // one 2 MiB block
/// assert_eq!(huge.len(), 512);
/// buddy.free(huge);
/// assert_eq!(buddy.free_frames(), 1024);
/// ```
#[derive(Debug, Clone)]
pub struct BuddyAllocator {
    /// Free lists, indexed by order.
    free_lists: Vec<IndexedSet>,
    /// Per-frame allocated bit.
    allocated: FrameBitmap,
    total_frames: u64,
    free_frames: u64,
}

impl BuddyAllocator {
    /// Create an allocator managing `total_frames` frames, all initially
    /// free, grouped into maximal aligned blocks.
    ///
    /// # Panics
    ///
    /// Panics if `total_frames` is zero.
    pub fn new(total_frames: u64) -> Self {
        assert!(total_frames > 0, "allocator must manage at least one frame");
        let mut this = Self {
            free_lists: (0..=MAX_ORDER).map(|_| IndexedSet::new()).collect(),
            allocated: FrameBitmap::new(total_frames),
            total_frames,
            free_frames: 0,
        };
        // Carve the frame range into maximal aligned power-of-two blocks.
        let mut frame = 0u64;
        while frame < total_frames {
            let align_order =
                if frame == 0 { MAX_ORDER } else { frame.trailing_zeros().min(MAX_ORDER) };
            let mut order = align_order;
            while frame + (1 << order) > total_frames {
                order -= 1;
            }
            this.free_lists[order as usize].insert(frame);
            this.free_frames += 1 << order;
            frame += 1 << order;
        }
        this
    }

    /// Convenience constructor: an allocator managing `bytes` of physical
    /// memory (rounded down to whole frames).
    pub fn with_bytes(bytes: u64) -> Self {
        Self::new(bytes >> crate::addr::PAGE_SHIFT)
    }

    /// Total frames managed.
    pub fn total_frames(&self) -> u64 {
        self.total_frames
    }

    /// Frames currently free.
    pub fn free_frames(&self) -> u64 {
        self.free_frames
    }

    /// Whether `frame` is currently handed out (false for free frames and
    /// frames outside managed memory). Used by the `SIPT_AUDIT=1`
    /// page-table↔allocator ownership check.
    pub fn is_allocated(&self, frame: PhysFrameNum) -> bool {
        frame.raw() < self.total_frames && self.allocated.test(frame.raw())
    }

    fn mark_allocated(&mut self, start: u64, order: u32) {
        for f in start..start + (1 << order) {
            debug_assert!(!self.allocated.test(f), "frame {f:#x} allocated twice");
            self.allocated.set(f);
        }
        self.free_frames -= 1 << order;
    }

    /// Allocate a block of `2^order` contiguous frames.
    ///
    /// Splits a larger block if no block of the exact order is free,
    /// exactly like `__rmqueue_smallest` in Linux.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfMemory`] if no block of order ≥ `order` is
    /// free.
    ///
    /// # Panics
    ///
    /// Panics if `order > MAX_ORDER`.
    pub fn alloc(&mut self, order: u32) -> Result<FrameBlock, MemError> {
        assert!(order <= MAX_ORDER, "order {order} exceeds MAX_ORDER");
        // Find the smallest order with a free block and pop from it in one
        // step, so exhaustion is a typed error on every path — there is no
        // window in which the chosen list can be observed non-empty but
        // popped empty.
        let (found, start) = (order..=MAX_ORDER)
            .find_map(|o| Some((o, self.free_lists[o as usize].pop()?)))
            .ok_or(MemError::OutOfMemory { requested_order: order })?;
        // Split down to the requested order, returning upper halves to the
        // free lists.
        let mut o = found;
        while o > order {
            o -= 1;
            let upper_half = start + (1u64 << o);
            self.free_lists[o as usize].insert(upper_half);
        }
        self.mark_allocated(start, order);
        Ok(FrameBlock { start: PhysFrameNum::new(start), order })
    }

    /// Allocate a specific block, if it is free at exactly that order.
    /// Used by the page-coloring policy. Returns `None` when the block is
    /// not on the order-`order` free list.
    pub fn alloc_exact(&mut self, start: PhysFrameNum, order: u32) -> Option<FrameBlock> {
        assert!(order <= MAX_ORDER);
        if self.free_lists[order as usize].remove(start.raw()) {
            self.mark_allocated(start.raw(), order);
            Some(FrameBlock { start, order })
        } else {
            None
        }
    }

    /// Allocate the specific single frame `frame`, splitting whatever free
    /// block contains it. Returns `None` if the frame is currently
    /// allocated (or out of range).
    pub fn alloc_specific_frame(&mut self, frame: PhysFrameNum) -> Option<FrameBlock> {
        self.alloc_specific_block(frame, 0)
    }

    /// Allocate the specific aligned block `[start, start + 2^order)`,
    /// splitting whatever free block contains it. Returns `None` if any
    /// part of it is currently allocated or out of range.
    ///
    /// # Panics
    ///
    /// Panics if `start` is not aligned to `2^order` frames.
    pub fn alloc_specific_block(&mut self, start: PhysFrameNum, order: u32) -> Option<FrameBlock> {
        let target = start.raw();
        assert_eq!(target % (1u64 << order), 0, "block start must be aligned to its order");
        if target + (1u64 << order) > self.total_frames {
            return None;
        }
        // Find the free block containing the target, smallest order first.
        let (found_start, found_order) = (order..=MAX_ORDER).find_map(|o| {
            let s = target & !((1u64 << o) - 1);
            self.free_lists[o as usize].contains(s).then_some((s, o))
        })?;
        self.free_lists[found_order as usize].remove(found_start);
        // Split toward the target, freeing the sibling halves.
        let mut s = found_start;
        let mut o = found_order;
        while o > order {
            o -= 1;
            let half = 1u64 << o;
            if target < s + half {
                self.free_lists[o as usize].insert(s + half);
            } else {
                self.free_lists[o as usize].insert(s);
                s += half;
            }
        }
        debug_assert_eq!(s, target);
        self.mark_allocated(target, order);
        Some(FrameBlock { start, order })
    }

    /// Allocate a block of `2^order` frames at a position chosen uniformly
    /// at random over the aligned candidates. Used by the allocator-churn
    /// model; falls back to a deterministic [`BuddyAllocator::alloc`] if
    /// rejection sampling fails to find a free candidate.
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfMemory`] when no block of the order is free.
    pub fn alloc_random_block<R: Rng>(
        &mut self,
        order: u32,
        rng: &mut R,
    ) -> Result<FrameBlock, MemError> {
        let candidates = self.total_frames >> order;
        if candidates == 0 || self.free_frames < (1 << order) {
            return Err(MemError::OutOfMemory { requested_order: order });
        }
        for _ in 0..256 {
            let start = PhysFrameNum::new(rng.gen_range(0..candidates) << order);
            if let Some(block) = self.alloc_specific_block(start, order) {
                return Ok(block);
            }
        }
        self.alloc(order)
    }

    /// Allocate a single free frame chosen uniformly at random over all
    /// free frames. This deliberately destroys contiguity; it is used only
    /// by adversarial placement policies (the paper's "no >4 KiB
    /// contiguity" condition) and the fragmentation injector.
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfMemory`] when no frame is free.
    pub fn alloc_random_frame<R: Rng>(&mut self, rng: &mut R) -> Result<FrameBlock, MemError> {
        if self.free_frames == 0 {
            return Err(MemError::OutOfMemory { requested_order: 0 });
        }
        // Rejection-sample a uniformly random free frame. Expected tries =
        // total/free; bail to a deterministic fallback if unlucky.
        for _ in 0..256 {
            let f = PhysFrameNum::new(rng.gen_range(0..self.total_frames));
            if let Some(block) = self.alloc_specific_frame(f) {
                return Ok(block);
            }
        }
        self.alloc(0)
    }

    /// Allocate `n_frames` frames as a list of maximal blocks, largest
    /// first. This mirrors how the kernel satisfies a burst of allocations:
    /// large contiguous chunks get broken off and mapped consecutively,
    /// producing the constant VA→PA deltas SIPT exploits.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfMemory`] (after rolling back any partial
    /// allocation) when fewer than `n_frames` frames are free.
    pub fn alloc_bulk(&mut self, n_frames: u64) -> Result<Vec<FrameBlock>, MemError> {
        if n_frames > self.free_frames {
            return Err(MemError::OutOfMemory { requested_order: 0 });
        }
        let mut blocks = Vec::new();
        let mut remaining = n_frames;
        while remaining > 0 {
            // Largest order that fits the remainder and can be allocated.
            let cap = 63 - remaining.leading_zeros();
            let mut order = cap.min(MAX_ORDER);
            let block = loop {
                match self.alloc(order) {
                    Ok(b) => break b,
                    Err(_) if order > 0 => order -= 1,
                    Err(e) => {
                        for b in blocks.drain(..) {
                            self.free(b);
                        }
                        return Err(e);
                    }
                }
            };
            remaining -= block.len();
            blocks.push(block);
        }
        Ok(blocks)
    }

    /// Free a previously allocated block, merging with free buddies.
    ///
    /// The block need not be freed at the same granularity it was allocated
    /// at: freeing an order-9 allocation as 512 order-0 frames is legal and
    /// re-merges fully (this is how `munmap` tears down bulk-mapped
    /// regions).
    ///
    /// # Panics
    ///
    /// Panics if any frame of the block is already free — a double free —
    /// or lies outside managed memory.
    pub fn free(&mut self, block: FrameBlock) {
        let mut start = block.start.raw();
        let mut order = block.order;
        assert!(
            start.is_multiple_of(1u64 << order),
            "freeing misaligned block at {start:#x} order {order}"
        );
        assert!(
            start + (1u64 << order) <= self.total_frames,
            "freeing block outside managed memory"
        );
        for f in start..start + (1 << order) {
            assert!(self.allocated.test(f), "double free of frame {f:#x}");
            self.allocated.clear(f);
        }
        self.free_frames += 1 << order;
        while order < MAX_ORDER {
            let buddy = start ^ (1u64 << order);
            if buddy + (1 << order) > self.total_frames
                || !self.free_lists[order as usize].remove(buddy)
            {
                break;
            }
            start = start.min(buddy);
            order += 1;
        }
        self.free_lists[order as usize].insert(start);
    }

    /// Snapshot occupancy statistics.
    pub fn stats(&self) -> BuddyStats {
        BuddyStats {
            total_frames: self.total_frames,
            free_frames: self.free_frames,
            free_blocks_per_order: self.free_lists.iter().map(|l| l.len() as u64).collect(),
        }
    }

    /// The *unusable free space index* `Fu(j)` of Gorman & Whitcroft, as
    /// used by the paper to quantify fragmentation: the fraction of free
    /// memory that cannot satisfy an allocation of order `j`.
    ///
    /// `Fu(j) = (TotalFree − Σ_{i≥j} 2^i·k_i) / TotalFree`, where `k_i` is
    /// the number of free blocks of order `i`. 0 means unfragmented, values
    /// near 1 mean an order-`j` request is nearly unsatisfiable. Returns 0
    /// when no memory is free.
    pub fn unusable_free_space_index(&self, j: u32) -> f64 {
        if self.free_frames == 0 {
            return 0.0;
        }
        let usable: u64 =
            (j..=MAX_ORDER).map(|i| (1u64 << i) * self.free_lists[i as usize].len() as u64).sum();
        (self.free_frames - usable) as f64 / self.free_frames as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use sipt_rng::{SeedableRng, StdRng};

    #[test]
    fn fresh_allocator_is_fully_free_in_max_blocks() {
        let b = BuddyAllocator::new(4096);
        let stats = b.stats();
        assert_eq!(stats.free_frames, 4096);
        assert_eq!(stats.free_blocks_per_order[MAX_ORDER as usize], 4);
        assert_eq!(b.unusable_free_space_index(HUGE_PAGE_ORDER), 0.0);
    }

    #[test]
    fn non_power_of_two_memory_is_fully_covered() {
        let b = BuddyAllocator::new(1000);
        assert_eq!(b.free_frames(), 1000);
        let total: u64 =
            b.stats().free_blocks_per_order.iter().enumerate().map(|(o, k)| (1u64 << o) * k).sum();
        assert_eq!(total, 1000);
    }

    #[test]
    fn alloc_splits_and_free_merges() {
        let mut b = BuddyAllocator::new(1024);
        let x = b.alloc(0).unwrap();
        assert_eq!(b.free_frames(), 1023);
        // One split chain: orders 0..MAX_ORDER-1 each have one block.
        let stats = b.stats();
        for o in 0..MAX_ORDER {
            assert_eq!(stats.free_blocks_per_order[o as usize], 1, "order {o}");
        }
        b.free(x);
        let stats = b.stats();
        assert_eq!(stats.free_frames, 1024);
        assert_eq!(stats.free_blocks_per_order[MAX_ORDER as usize], 1);
    }

    #[test]
    fn alloc_exhausts_then_errors() {
        let mut b = BuddyAllocator::new(2);
        b.alloc(1).unwrap();
        assert!(matches!(b.alloc(0), Err(MemError::OutOfMemory { .. })));
    }

    #[test]
    fn blocks_are_aligned_and_disjoint() {
        let mut b = BuddyAllocator::new(1 << 14);
        let mut seen = std::collections::HashSet::new();
        let mut blocks = Vec::new();
        for order in [3u32, 0, 9, 5, 0, 2, 9, 1] {
            let blk = b.alloc(order).unwrap();
            assert_eq!(blk.start.raw() % blk.len(), 0, "block must be aligned to its size");
            for f in blk.frames() {
                assert!(seen.insert(f.raw()), "frame {f} handed out twice");
            }
            blocks.push(blk);
        }
        for blk in blocks {
            b.free(blk);
        }
        assert_eq!(b.free_frames(), 1 << 14);
    }

    #[test]
    fn bulk_allocation_prefers_large_blocks() {
        let mut b = BuddyAllocator::new(4096);
        let blocks = b.alloc_bulk(1536).unwrap();
        // 1536 = 1024 + 512: exactly two blocks from fresh memory.
        assert_eq!(blocks.len(), 2);
        assert_eq!(blocks[0].order, 10);
        assert_eq!(blocks[1].order, 9);
        assert_eq!(blocks.iter().map(FrameBlock::len).sum::<u64>(), 1536);
    }

    #[test]
    fn bulk_allocation_rolls_back_on_failure() {
        let mut b = BuddyAllocator::new(64);
        let keep = b.alloc_bulk(32).unwrap();
        assert!(b.alloc_bulk(33).is_err());
        assert_eq!(b.free_frames(), 32, "failed bulk alloc must not leak");
        for blk in keep {
            b.free(blk);
        }
        assert_eq!(b.free_frames(), 64);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut b = BuddyAllocator::new(16);
        let x = b.alloc(0).unwrap();
        b.free(x);
        b.free(x);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn free_of_never_allocated_block_panics() {
        let mut b = BuddyAllocator::new(16);
        b.free(FrameBlock { start: PhysFrameNum::new(4), order: 1 });
    }

    #[test]
    fn free_at_finer_granularity_remerges() {
        let mut b = BuddyAllocator::new(1024);
        let blk = b.alloc(HUGE_PAGE_ORDER).unwrap();
        for f in blk.frames() {
            b.free(FrameBlock { start: f, order: 0 });
        }
        assert_eq!(b.free_frames(), 1024);
        assert_eq!(b.stats().free_blocks_per_order[MAX_ORDER as usize], 1);
    }

    #[test]
    fn alloc_specific_frame_carves_out_exactly_one() {
        let mut b = BuddyAllocator::new(1024);
        let blk = b.alloc_specific_frame(PhysFrameNum::new(517)).unwrap();
        assert_eq!(blk.start.raw(), 517);
        assert_eq!(b.free_frames(), 1023);
        // The same frame cannot be carved twice.
        assert!(b.alloc_specific_frame(PhysFrameNum::new(517)).is_none());
        // Out of range is None, not a panic.
        assert!(b.alloc_specific_frame(PhysFrameNum::new(9999)).is_none());
        b.free(blk);
        assert_eq!(b.stats().free_blocks_per_order[MAX_ORDER as usize], 1);
    }

    #[test]
    fn unusable_free_space_index_tracks_fragmentation() {
        let mut b = BuddyAllocator::new(1024);
        assert_eq!(b.unusable_free_space_index(9), 0.0);
        // Allocate everything as singles, free every other frame: free
        // space exists but no order-9 block does.
        let frames: Vec<_> = (0..1024).map(|_| b.alloc(0).unwrap()).collect();
        for blk in frames.iter().step_by(2) {
            b.free(*blk);
        }
        assert_eq!(b.free_frames(), 512);
        assert_eq!(b.unusable_free_space_index(9), 1.0);
        assert_eq!(b.unusable_free_space_index(0), 0.0);
    }

    #[test]
    fn random_frame_allocation_scatters() {
        let mut b = BuddyAllocator::new(1 << 12);
        let mut rng = StdRng::seed_from_u64(7);
        let frames: Vec<_> =
            (0..64).map(|_| b.alloc_random_frame(&mut rng).unwrap().start.raw()).collect();
        // With 4096 candidate positions and 64 draws, adjacency should be
        // essentially absent.
        let adjacent = frames.windows(2).filter(|w| w[1] == w[0] + 1).count();
        assert!(adjacent < 8, "random placement produced {adjacent} adjacent pairs");
        assert_eq!(b.free_frames(), (1 << 12) - 64);
    }

    #[test]
    fn random_frame_allocation_is_roughly_uniform() {
        let mut b = BuddyAllocator::new(1024);
        let mut rng = StdRng::seed_from_u64(3);
        let mut low_half = 0;
        for _ in 0..512 {
            if b.alloc_random_frame(&mut rng).unwrap().start.raw() < 512 {
                low_half += 1;
            }
        }
        assert!((170..342).contains(&low_half), "low-half draws: {low_half}/512");
    }

    proptest! {
        /// Invariant: any interleaving of allocs and frees conserves frames,
        /// never hands out overlapping blocks, and fully merges back.
        #[test]
        fn alloc_free_conservation(ops in proptest::collection::vec(0u32..=MAX_ORDER, 1..64)) {
            let mut b = BuddyAllocator::new(1 << 12);
            let mut live: Vec<FrameBlock> = Vec::new();
            let mut allocated_frames = std::collections::HashSet::new();
            for (i, order) in ops.iter().enumerate() {
                if i % 3 == 2 && !live.is_empty() {
                    let blk = live.swap_remove(i % live.len());
                    for f in blk.frames() {
                        allocated_frames.remove(&f.raw());
                    }
                    b.free(blk);
                } else if let Ok(blk) = b.alloc(*order) {
                    for f in blk.frames() {
                        prop_assert!(allocated_frames.insert(f.raw()), "overlap at {}", f);
                    }
                    live.push(blk);
                }
                prop_assert_eq!(
                    b.free_frames() + allocated_frames.len() as u64,
                    1 << 12
                );
            }
            for blk in live {
                b.free(blk);
            }
            prop_assert_eq!(b.free_frames(), 1 << 12);
            prop_assert_eq!(b.stats().free_blocks_per_order[MAX_ORDER as usize], 4);
        }

        /// Driving the allocator to (and past) exhaustion through random
        /// alloc/free interleavings never panics: every failure is a typed
        /// `OutOfMemory`, free-frame counts are conserved throughout, and
        /// the allocated bitmap agrees with the live set.
        #[test]
        fn exhaustion_is_typed_not_a_panic(ops in proptest::collection::vec(0u32..=MAX_ORDER, 1..96)) {
            // Tiny arena (64 frames) so most op sequences actually exhaust it.
            let mut b = BuddyAllocator::new(64);
            let mut live: Vec<FrameBlock> = Vec::new();
            for (i, order) in ops.iter().enumerate() {
                if i % 5 == 4 && !live.is_empty() {
                    b.free(live.swap_remove(i % live.len()));
                } else {
                    match b.alloc(*order) {
                        Ok(blk) => {
                            for f in blk.frames() {
                                prop_assert!(b.is_allocated(f), "fresh block must be marked");
                            }
                            live.push(blk);
                        }
                        Err(MemError::OutOfMemory { requested_order }) => {
                            prop_assert_eq!(requested_order, *order);
                            // The error is honest: no free block of the order exists.
                            let usable: u64 = (*order..=MAX_ORDER)
                                .map(|o| b.stats().free_blocks_per_order[o as usize])
                                .sum();
                            prop_assert_eq!(usable, 0, "OOM reported with a usable block free");
                        }
                        Err(e) => prop_assert!(false, "unexpected error {e:?}"),
                    }
                }
                let live_frames: u64 = live.iter().map(FrameBlock::len).sum();
                prop_assert_eq!(b.free_frames() + live_frames, 64);
            }
            for blk in live {
                b.free(blk);
            }
            prop_assert_eq!(b.free_frames(), 64);
        }

        /// alloc_specific_frame + free always restores a pristine allocator.
        #[test]
        fn specific_frame_roundtrip(frames in proptest::collection::hash_set(0u64..1024, 1..32)) {
            let mut b = BuddyAllocator::new(1024);
            let mut blocks = Vec::new();
            for f in &frames {
                let blk = b.alloc_specific_frame(PhysFrameNum::new(*f)).expect("frame free");
                prop_assert_eq!(blk.start.raw(), *f);
                blocks.push(blk);
            }
            prop_assert_eq!(b.free_frames(), 1024 - frames.len() as u64);
            for blk in blocks {
                b.free(blk);
            }
            prop_assert_eq!(b.stats().free_blocks_per_order[MAX_ORDER as usize], 1);
        }
    }
}
