//! An mmap-style virtual address space backed by the buddy allocator.
//!
//! This is the simulator's stand-in for the Linux virtual memory manager:
//! it decides *where in physical memory* each virtual page lands, which is
//! the single property that determines SIPT's index-bit predictability.
//!
//! Placement follows one of several [`PlacementPolicy`] values so the
//! paper's sensitivity studies (THP off, fragmented, fully scattered) can
//! be reproduced by swapping the policy rather than patching the OS model.

use crate::addr::{PageSize, Translation, VirtAddr, VirtPageNum, PAGES_PER_HUGE_PAGE, PAGE_SIZE};
use crate::buddy::{BuddyAllocator, FrameBlock, HUGE_PAGE_ORDER};
use crate::page_table::PageTable;
use crate::MemError;
use std::collections::BTreeMap;

/// How virtual pages are backed by physical frames at `mmap` time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementPolicy {
    /// Linux-like default: transparent huge pages for every 2 MiB-aligned
    /// chunk the buddy allocator can satisfy with an order-9 block, bulk
    /// allocation (largest-blocks-first) for the remainder.
    LinuxDefault,
    /// Transparent huge pages disabled: all pages are 4 KiB, but bulk
    /// allocation still produces large contiguous runs (the paper's
    /// "THP-off" condition).
    ThpOff,
    /// Adversarial: every 4 KiB page is backed by a uniformly random free
    /// frame, destroying all >4 KiB contiguity (the paper's most severe
    /// sensitivity condition).
    Scattered,
    /// Page coloring: the low `bits` of each PFN are made to match the low
    /// `bits` of the VPN, as in FreeBSD/NetBSD-style colored allocators
    /// (related work in §II.D). Pages are 4 KiB.
    Colored {
        /// Number of low page-number bits to match between VPN and PFN.
        bits: u32,
    },
}

/// A mapped virtual region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Region {
    /// First virtual address of the region (page aligned).
    pub start: VirtAddr,
    /// Length in 4 KiB pages.
    pub pages: u64,
}

impl Region {
    /// Length of the region in bytes.
    pub fn bytes(&self) -> u64 {
        self.pages * PAGE_SIZE
    }

    /// One-past-the-end virtual address.
    pub fn end(&self) -> VirtAddr {
        self.start + self.bytes()
    }

    /// Whether `va` falls inside the region.
    pub fn contains(&self, va: VirtAddr) -> bool {
        va >= self.start && va < self.end()
    }
}

/// Statistics for an address space.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AddressSpaceStats {
    /// Total pages ever mapped.
    pub pages_mapped: u64,
    /// Pages mapped as part of 2 MiB huge mappings.
    pub pages_in_huge_mappings: u64,
    /// Number of mmap calls.
    pub mmaps: u64,
    /// Number of munmap calls.
    pub munmaps: u64,
}

/// A process address space: a bump-allocated range of virtual pages, a page
/// table, and the placement policy that backs new regions.
///
/// ```
/// use sipt_mem::{AddressSpace, BuddyAllocator, PlacementPolicy};
/// let mut phys = BuddyAllocator::new(4096);
/// let mut asid0 = AddressSpace::new(0, PlacementPolicy::LinuxDefault);
/// let region = asid0.mmap(64 * 4096, &mut phys).unwrap();
/// let t = asid0.translate(region.start).unwrap();
/// assert_eq!(t.pa.page_offset(), 0);
/// ```
#[derive(Debug, Clone)]
pub struct AddressSpace {
    asid: u16,
    policy: PlacementPolicy,
    page_table: PageTable,
    regions: BTreeMap<u64, Region>,
    /// Starts of regions whose frames are owned elsewhere (synonyms).
    shared_regions: std::collections::BTreeSet<u64>,
    next_va: u64,
    stats: AddressSpaceStats,
    rng: sipt_rng::StdRng,
}

/// Base of the simulated user virtual address range.
const VA_BASE: u64 = 0x0000_1000_0000;

impl AddressSpace {
    /// Create an address space with the given ASID and placement policy.
    /// Placement randomness (only used by [`PlacementPolicy::Scattered`])
    /// is seeded from the ASID so runs are deterministic.
    pub fn new(asid: u16, policy: PlacementPolicy) -> Self {
        use sipt_rng::SeedableRng;
        Self {
            asid,
            policy,
            page_table: PageTable::new(),
            regions: BTreeMap::new(),
            shared_regions: std::collections::BTreeSet::new(),
            next_va: VA_BASE,
            stats: AddressSpaceStats::default(),
            rng: sipt_rng::StdRng::seed_from_u64(0x51B7_0000 + asid as u64),
        }
    }

    /// The address-space identifier.
    pub fn asid(&self) -> u16 {
        self.asid
    }

    /// The placement policy in force.
    pub fn policy(&self) -> PlacementPolicy {
        self.policy
    }

    /// Map a fresh region of at least `bytes` bytes (rounded up to whole
    /// pages), eagerly backed with physical frames from `phys` according to
    /// the placement policy.
    ///
    /// Region starts are 2 MiB aligned so that huge-page opportunities
    /// depend only on the allocator, as with Linux's default mmap topdown
    /// layout plus THP alignment hints.
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfMemory`] if physical memory is exhausted (any
    /// partially completed backing is rolled back).
    pub fn mmap(&mut self, bytes: u64, phys: &mut BuddyAllocator) -> Result<Region, MemError> {
        if bytes == 0 {
            return Err(MemError::EmptyMapping);
        }
        let pages = bytes.div_ceil(PAGE_SIZE);
        // Like Linux, only huge-page-*eligible* mappings get 2 MiB
        // alignment (THP alignment hint); small mappings pack at 4 KiB
        // granularity, so their VA index bits cycle naturally — which is
        // what makes fine-grained allocators hostile to naive SIPT.
        let align = if pages >= PAGES_PER_HUGE_PAGE { PageSize::Huge2M } else { PageSize::Base4K };
        let start_va = VirtAddr::new(self.next_va).align_up(align);
        let region = Region { start: start_va, pages };
        let first_vpn = VirtPageNum::containing(start_va);

        let backed = self.back_region(first_vpn, pages, phys);
        match backed {
            Ok(()) => {
                self.next_va = region.end().raw();
                self.regions.insert(start_va.raw(), region);
                self.stats.mmaps += 1;
                self.stats.pages_mapped += pages;
                Ok(region)
            }
            Err(e) => {
                // Roll back whatever was mapped.
                for i in 0..pages {
                    let vpn = first_vpn + i;
                    if let Some(t) = self.page_table.translate(vpn.base()) {
                        // Unmapping a huge page removes all 512 entries at
                        // once; only free frames we have not yet freed.
                        if self.page_table.unmap(vpn).is_ok() {
                            Self::free_mapping_frames(phys, t.page_size, t.pfn.raw());
                        }
                    }
                }
                Err(e)
            }
        }
    }

    fn back_region(
        &mut self,
        first_vpn: VirtPageNum,
        pages: u64,
        phys: &mut BuddyAllocator,
    ) -> Result<(), MemError> {
        match self.policy {
            PlacementPolicy::LinuxDefault => self.back_linux(first_vpn, pages, phys, true),
            PlacementPolicy::ThpOff => self.back_linux(first_vpn, pages, phys, false),
            PlacementPolicy::Scattered => self.back_scattered(first_vpn, pages, phys),
            PlacementPolicy::Colored { bits } => self.back_colored(first_vpn, pages, phys, bits),
        }
    }

    /// Default/ThpOff backing: huge pages where possible (if `thp`), bulk
    /// allocation of maximal buddy blocks for the rest.
    fn back_linux(
        &mut self,
        first_vpn: VirtPageNum,
        pages: u64,
        phys: &mut BuddyAllocator,
        thp: bool,
    ) -> Result<(), MemError> {
        let mut vpn = first_vpn.raw();
        let end = first_vpn.raw() + pages;
        while vpn < end {
            let huge_aligned = vpn.is_multiple_of(PAGES_PER_HUGE_PAGE);
            let room_for_huge = end - vpn >= PAGES_PER_HUGE_PAGE;
            if thp && huge_aligned && room_for_huge {
                if let Ok(block) = phys.alloc(HUGE_PAGE_ORDER) {
                    self.page_table.map(VirtPageNum::new(vpn), block.start, PageSize::Huge2M)?;
                    self.stats.pages_in_huge_mappings += PAGES_PER_HUGE_PAGE;
                    vpn += PAGES_PER_HUGE_PAGE;
                    continue;
                }
            }
            // Bulk-allocate the span up to the next huge boundary (or the
            // region end) in maximal blocks, mapping consecutively.
            let next_boundary =
                if thp { ((vpn / PAGES_PER_HUGE_PAGE) + 1) * PAGES_PER_HUGE_PAGE } else { end };
            let span = next_boundary.min(end) - vpn;
            let blocks = phys.alloc_bulk(span)?;
            for block in blocks {
                for (i, frame) in block.frames().enumerate() {
                    self.page_table.map(
                        VirtPageNum::new(vpn + i as u64),
                        frame,
                        PageSize::Base4K,
                    )?;
                }
                vpn += block.len();
            }
        }
        Ok(())
    }

    /// Adversarial backing: every page from a random frame.
    fn back_scattered(
        &mut self,
        first_vpn: VirtPageNum,
        pages: u64,
        phys: &mut BuddyAllocator,
    ) -> Result<(), MemError> {
        for i in 0..pages {
            let block = phys.alloc_random_frame(&mut self.rng)?;
            self.page_table.map(first_vpn + i, block.start, PageSize::Base4K)?;
        }
        Ok(())
    }

    /// Colored backing: PFN low bits must equal VPN low bits. Allocates
    /// frames and parks color mismatches until a match appears; parked
    /// frames are released afterwards.
    fn back_colored(
        &mut self,
        first_vpn: VirtPageNum,
        pages: u64,
        phys: &mut BuddyAllocator,
        bits: u32,
    ) -> Result<(), MemError> {
        let mask = (1u64 << bits) - 1;
        let mut parked: Vec<FrameBlock> = Vec::new();
        let mut result = Ok(());
        'outer: for i in 0..pages {
            let want = (first_vpn.raw() + i) & mask;
            // Reuse a parked frame of the right color first.
            if let Some(pos) = parked.iter().position(|b| b.start.raw() & mask == want) {
                let block = parked.swap_remove(pos);
                self.page_table.map(first_vpn + i, block.start, PageSize::Base4K)?;
                continue;
            }
            loop {
                match phys.alloc(0) {
                    Ok(block) if block.start.raw() & mask == want => {
                        self.page_table.map(first_vpn + i, block.start, PageSize::Base4K)?;
                        break;
                    }
                    Ok(block) => parked.push(block),
                    Err(e) => {
                        result = Err(e);
                        break 'outer;
                    }
                }
            }
        }
        for block in parked {
            phys.free(block);
        }
        result
    }

    /// Create a *synonym* mapping: a fresh virtual region in this address
    /// space backed by the same physical frames that back `src_region` in
    /// `src` (which may be this same address space — classic shared-memory
    /// double mapping). The frames stay owned by the original mapping;
    /// `munmap` of the synonym region only removes the translations.
    ///
    /// This is the OS behaviour that makes VIVT caches hard (paper §II.B)
    /// and that SIPT handles for free by always tag-checking the full
    /// physical address.
    ///
    /// # Errors
    ///
    /// [`MemError::NotMapped`] if any page of `src_region` is unmapped in
    /// `src`.
    pub fn mmap_shared(
        &mut self,
        src: &AddressSpace,
        src_region: Region,
    ) -> Result<Region, MemError> {
        // Collect the source translations first so a failure cannot leave
        // this space half-mapped.
        let mut frames = Vec::with_capacity(src_region.pages as usize);
        let src_first = VirtPageNum::containing(src_region.start);
        for i in 0..src_region.pages {
            let vpn = src_first + i;
            let t = src.page_table.translate(vpn.base()).ok_or(MemError::NotMapped { vpn })?;
            frames.push(t.pfn);
        }
        let start_va = VirtAddr::new(self.next_va).align_up(PageSize::Base4K);
        let region = Region { start: start_va, pages: src_region.pages };
        let first_vpn = VirtPageNum::containing(start_va);
        for (i, pfn) in frames.into_iter().enumerate() {
            self.page_table.map(first_vpn + i as u64, pfn, PageSize::Base4K)?;
        }
        self.next_va = region.end().raw();
        self.regions.insert(start_va.raw(), region);
        self.shared_regions.insert(start_va.raw());
        self.stats.mmaps += 1;
        self.stats.pages_mapped += region.pages;
        Ok(region)
    }

    /// Unmap a region previously returned by [`AddressSpace::mmap`], freeing
    /// its physical frames back to `phys`. Synonym regions created with
    /// [`AddressSpace::mmap_shared`] only drop their translations — the
    /// frames remain owned by the original mapping.
    ///
    /// # Errors
    ///
    /// [`MemError::NotMapped`] if `start` is not the start of a live region.
    pub fn munmap(&mut self, start: VirtAddr, phys: &mut BuddyAllocator) -> Result<(), MemError> {
        let region = self
            .regions
            .remove(&start.raw())
            .ok_or(MemError::NotMapped { vpn: VirtPageNum::containing(start) })?;
        let shared = self.shared_regions.remove(&start.raw());
        let first_vpn = VirtPageNum::containing(region.start);
        let mut i = 0;
        while i < region.pages {
            let vpn = first_vpn + i;
            let mapping = self.page_table.unmap(vpn)?;
            if !shared {
                Self::free_mapping_frames(phys, mapping.page_size, mapping.pfn.raw());
            }
            i += match mapping.page_size {
                PageSize::Base4K => 1,
                PageSize::Huge2M => PAGES_PER_HUGE_PAGE,
            };
        }
        self.stats.munmaps += 1;
        Ok(())
    }

    fn free_mapping_frames(phys: &mut BuddyAllocator, size: PageSize, first_pfn: u64) {
        match size {
            PageSize::Base4K => {
                phys.free(FrameBlock { start: crate::addr::PhysFrameNum::new(first_pfn), order: 0 })
            }
            PageSize::Huge2M => phys.free(FrameBlock {
                start: crate::addr::PhysFrameNum::new(first_pfn),
                order: HUGE_PAGE_ORDER,
            }),
        }
    }

    /// Translate a virtual address through this address space's page table.
    pub fn translate(&self, va: VirtAddr) -> Option<Translation> {
        self.page_table.translate(va)
    }

    /// Access the underlying page table (read-only).
    pub fn page_table(&self) -> &PageTable {
        &self.page_table
    }

    /// The region containing `va`, if any.
    pub fn region_containing(&self, va: VirtAddr) -> Option<Region> {
        self.regions.range(..=va.raw()).next_back().map(|(_, r)| *r).filter(|r| r.contains(va))
    }

    /// Iterate over live regions in ascending address order.
    pub fn regions(&self) -> impl Iterator<Item = Region> + '_ {
        self.regions.values().copied()
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> AddressSpaceStats {
        self.stats
    }

    /// Fraction of mapped pages in this space backed by huge mappings.
    pub fn huge_page_fraction(&self) -> f64 {
        if self.stats.pages_mapped == 0 {
            return 0.0;
        }
        self.stats.pages_in_huge_mappings as f64 / self.stats.pages_mapped as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::PAGE_SHIFT;

    fn fresh(policy: PlacementPolicy, frames: u64) -> (AddressSpace, BuddyAllocator) {
        (AddressSpace::new(1, policy), BuddyAllocator::new(frames))
    }

    #[test]
    fn mmap_backs_every_page() {
        let (mut asp, mut phys) = fresh(PlacementPolicy::LinuxDefault, 8192);
        let region = asp.mmap(100 * PAGE_SIZE, &mut phys).unwrap();
        assert_eq!(region.pages, 100);
        for i in 0..100 {
            let va = region.start + i * PAGE_SIZE;
            assert!(asp.translate(va).is_some(), "page {i} unmapped");
        }
        assert!(asp.translate(region.end()).is_none());
    }

    #[test]
    fn linux_default_uses_huge_pages_when_possible() {
        let (mut asp, mut phys) = fresh(PlacementPolicy::LinuxDefault, 4096);
        // 4 MiB request, 2 MiB aligned start: both chunks should be huge.
        let region = asp.mmap(1024 * PAGE_SIZE, &mut phys).unwrap();
        let t = asp.translate(region.start).unwrap();
        assert_eq!(t.page_size, PageSize::Huge2M);
        assert_eq!(asp.huge_page_fraction(), 1.0);
    }

    #[test]
    fn thp_off_never_maps_huge_but_stays_contiguous() {
        let (mut asp, mut phys) = fresh(PlacementPolicy::ThpOff, 4096);
        let region = asp.mmap(1024 * PAGE_SIZE, &mut phys).unwrap();
        let t0 = asp.translate(region.start).unwrap();
        assert_eq!(t0.page_size, PageSize::Base4K);
        // Bulk allocation from fresh memory: consecutive pages must land in
        // consecutive frames (constant delta).
        let t1 = asp.translate(region.start + PAGE_SIZE).unwrap();
        assert_eq!(t1.pfn.raw(), t0.pfn.raw() + 1);
        assert_eq!(asp.huge_page_fraction(), 0.0);
    }

    #[test]
    fn scattered_policy_randomizes_deltas() {
        let (mut asp, mut phys) = fresh(PlacementPolicy::Scattered, 1 << 14);
        let region = asp.mmap(256 * PAGE_SIZE, &mut phys).unwrap();
        let mut same_delta = 0;
        let mut prev_delta = None;
        for i in 0..256u64 {
            let va = region.start + i * PAGE_SIZE;
            let t = asp.translate(va).unwrap();
            let delta = t.pfn.raw().wrapping_sub(va.raw() >> PAGE_SHIFT);
            if prev_delta == Some(delta) {
                same_delta += 1;
            }
            prev_delta = Some(delta);
        }
        assert!(same_delta < 32, "scattered placement kept {same_delta} constant deltas");
    }

    #[test]
    fn colored_policy_matches_low_bits() {
        let (mut asp, mut phys) = fresh(PlacementPolicy::Colored { bits: 2 }, 4096);
        let region = asp.mmap(64 * PAGE_SIZE, &mut phys).unwrap();
        for i in 0..64u64 {
            let va = region.start + i * PAGE_SIZE;
            let t = asp.translate(va).unwrap();
            assert_eq!(
                t.pfn.raw() & 0b11,
                (va.raw() >> PAGE_SHIFT) & 0b11,
                "page {i} color mismatch"
            );
        }
    }

    #[test]
    fn munmap_returns_all_frames() {
        let (mut asp, mut phys) = fresh(PlacementPolicy::LinuxDefault, 4096);
        let free_before = phys.free_frames();
        let region = asp.mmap(700 * PAGE_SIZE, &mut phys).unwrap();
        assert_eq!(phys.free_frames(), free_before - 700);
        asp.munmap(region.start, &mut phys).unwrap();
        assert_eq!(phys.free_frames(), free_before);
        assert!(asp.translate(region.start).is_none());
    }

    #[test]
    fn mmap_out_of_memory_rolls_back() {
        let (mut asp, mut phys) = fresh(PlacementPolicy::ThpOff, 64);
        assert!(asp.mmap(100 * PAGE_SIZE, &mut phys).is_err());
        assert_eq!(phys.free_frames(), 64, "failed mmap must not leak frames");
        assert_eq!(asp.regions().count(), 0);
    }

    #[test]
    fn mmap_zero_bytes_rejected() {
        let (mut asp, mut phys) = fresh(PlacementPolicy::LinuxDefault, 64);
        assert!(matches!(asp.mmap(0, &mut phys), Err(MemError::EmptyMapping)));
    }

    #[test]
    fn regions_do_not_overlap() {
        let (mut asp, mut phys) = fresh(PlacementPolicy::LinuxDefault, 1 << 14);
        let a = asp.mmap(3 * PAGE_SIZE, &mut phys).unwrap();
        let b = asp.mmap(5 * PAGE_SIZE, &mut phys).unwrap();
        assert!(a.end() <= b.start);
        assert_eq!(asp.region_containing(a.start + 0x100), Some(a));
        assert_eq!(asp.region_containing(b.start + 0x100), Some(b));
        assert_eq!(asp.region_containing(VirtAddr::new(0)), None);
    }

    #[test]
    fn fragmented_memory_prevents_huge_pages() {
        let (mut asp, mut phys) = fresh(PlacementPolicy::LinuxDefault, 4096);
        // Fragment: allocate everything as singles, free every other frame.
        let singles: Vec<_> = (0..4096).map(|_| phys.alloc(0).unwrap()).collect();
        for blk in singles.iter().step_by(2) {
            phys.free(*blk);
        }
        assert_eq!(phys.unusable_free_space_index(HUGE_PAGE_ORDER), 1.0);
        let region = asp.mmap(1024 * PAGE_SIZE, &mut phys).unwrap();
        let t = asp.translate(region.start).unwrap();
        assert_eq!(t.page_size, PageSize::Base4K);
        assert_eq!(asp.huge_page_fraction(), 0.0);
    }
}
