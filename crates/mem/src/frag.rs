//! Physical memory fragmentation injector.
//!
//! Reproduces the paper's §VII.B "fragmented memory" condition (built there
//! with the tool of Kwon et al.): physical memory that still has plenty of
//! *free* frames, but almost no *contiguous* free blocks, so the unusable
//! free space index `Fu(9)` stays above 0.95 and the buddy allocator can
//! satisfy essentially no huge-page or bulk requests.

use crate::buddy::{BuddyAllocator, FrameBlock};
use crate::MemError;
use sipt_rng::Rng;

/// Frames pinned by the fragmentation injector. They play the role of the
/// long-running co-tenant processes that shattered memory; release them with
/// [`FragmentHold::release`] to "kill" those processes.
#[derive(Debug)]
pub struct FragmentHold {
    pinned: Vec<FrameBlock>,
}

impl FragmentHold {
    /// Number of frames pinned.
    pub fn pinned_frames(&self) -> u64 {
        self.pinned.iter().map(FrameBlock::len).sum()
    }

    /// Return all pinned frames to the allocator, ending the fragmented
    /// condition.
    pub fn release(self, phys: &mut BuddyAllocator) {
        for block in self.pinned {
            phys.free(block);
        }
    }
}

/// Fragment `phys` so that roughly `free_fraction` of its frames remain
/// free, but scattered as isolated 4 KiB holes: allocate every free frame
/// at order 0, then free a uniformly random subset.
///
/// Randomly freed single frames essentially never find their buddy free,
/// so the resulting free space has `Fu(9)` near 1.0 (verified by the caller
/// via [`BuddyAllocator::unusable_free_space_index`]).
///
/// # Errors
///
/// [`MemError::OutOfMemory`] only if the allocator's free lists change
/// underneath us (cannot happen with exclusive access).
///
/// # Panics
///
/// Panics if `free_fraction` is not within `(0, 1)`.
pub fn fragment_memory<R: Rng>(
    phys: &mut BuddyAllocator,
    free_fraction: f64,
    rng: &mut R,
) -> Result<FragmentHold, MemError> {
    assert!(
        free_fraction > 0.0 && free_fraction < 1.0,
        "free_fraction must be in (0,1), got {free_fraction}"
    );
    // Grab every free frame as an order-0 block.
    let mut singles: Vec<FrameBlock> = Vec::with_capacity(phys.free_frames() as usize);
    while phys.free_frames() > 0 {
        singles.push(phys.alloc(0)?);
    }
    // Shuffle-free a random subset.
    let n_free = (singles.len() as f64 * free_fraction).round() as usize;
    for _ in 0..n_free {
        let i = rng.gen_range(0..singles.len());
        let block = singles.swap_remove(i);
        phys.free(block);
    }
    Ok(FragmentHold { pinned: singles })
}

/// Fragment until `Fu(order) >= target_fu` while freeing `free_fraction` of
/// frames, retrying with progressively more adversarial placement. In
/// practice a single pass of [`fragment_memory`] already exceeds
/// `Fu(9) = 0.95` for any sensible `free_fraction`; this wrapper asserts it.
///
/// # Errors
///
/// Propagates allocator errors; returns [`MemError::FragmentationTarget`]
/// if the target index cannot be reached (e.g. `free_fraction` so small
/// that zero free blocks exist).
pub fn fragment_to_target<R: Rng>(
    phys: &mut BuddyAllocator,
    free_fraction: f64,
    order: u32,
    target_fu: f64,
    rng: &mut R,
) -> Result<FragmentHold, MemError> {
    let hold = fragment_memory(phys, free_fraction, rng)?;
    let fu = phys.unusable_free_space_index(order);
    if fu < target_fu {
        hold.release(phys);
        return Err(MemError::FragmentationTarget { achieved: fu, target: target_fu });
    }
    Ok(hold)
}

/// Default fragmentation level used by the paper's sensitivity study:
/// `Fu(9) > 0.95` ("an extreme level of fragmentation at nearly all times")
/// while keeping half of memory free so workloads never run out.
pub const PAPER_TARGET_FU: f64 = 0.95;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buddy::HUGE_PAGE_ORDER;
    use sipt_rng::{SeedableRng, StdRng};

    #[test]
    fn fragmentation_reaches_paper_target() {
        let mut phys = BuddyAllocator::new(1 << 15); // 128 MiB
        let mut rng = StdRng::seed_from_u64(42);
        let hold =
            fragment_to_target(&mut phys, 0.5, HUGE_PAGE_ORDER, PAPER_TARGET_FU, &mut rng).unwrap();
        let fu = phys.unusable_free_space_index(HUGE_PAGE_ORDER);
        assert!(fu > PAPER_TARGET_FU, "Fu(9) = {fu}");
        // Half of memory is still free — fragmentation, not exhaustion.
        let free = phys.free_frames();
        assert!((free as f64 - (1 << 14) as f64).abs() < 256.0);
        hold.release(&mut phys);
        assert_eq!(phys.free_frames(), 1 << 15);
        assert_eq!(phys.unusable_free_space_index(HUGE_PAGE_ORDER), 0.0);
    }

    #[test]
    fn fragmented_memory_defeats_huge_allocations_but_not_singles() {
        let mut phys = BuddyAllocator::new(1 << 14);
        let mut rng = StdRng::seed_from_u64(7);
        let _hold = fragment_memory(&mut phys, 0.4, &mut rng).unwrap();
        assert!(phys.alloc(HUGE_PAGE_ORDER).is_err(), "order-9 should be unsatisfiable");
        assert!(phys.alloc(0).is_ok(), "singles must still be available");
    }

    #[test]
    fn pinned_frames_accounting() {
        let mut phys = BuddyAllocator::new(1024);
        let mut rng = StdRng::seed_from_u64(1);
        let hold = fragment_memory(&mut phys, 0.25, &mut rng).unwrap();
        assert_eq!(hold.pinned_frames() + phys.free_frames(), 1024);
        assert_eq!(phys.free_frames(), 256);
    }

    #[test]
    #[should_panic(expected = "free_fraction")]
    fn invalid_fraction_panics() {
        let mut phys = BuddyAllocator::new(16);
        let mut rng = StdRng::seed_from_u64(1);
        let _ = fragment_memory(&mut phys, 1.5, &mut rng);
    }

    #[test]
    fn unreachable_target_is_reported() {
        let mut phys = BuddyAllocator::new(1 << 12);
        let mut rng = StdRng::seed_from_u64(9);
        // Asking for Fu(0) >= 0.95 is impossible: order-0 requests are
        // satisfiable whenever anything is free, so Fu(0) == 0.
        let err = fragment_to_target(&mut phys, 0.5, 0, 0.95, &mut rng).unwrap_err();
        assert!(matches!(err, MemError::FragmentationTarget { .. }));
        // And the failed attempt rolled everything back.
        assert_eq!(phys.free_frames(), 1 << 12);
    }
}
