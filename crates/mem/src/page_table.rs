//! A per-process page table mapping virtual pages to physical frames.
//!
//! Models exactly what the simulator needs: 4 KiB and 2 MiB mappings,
//! translation, and remapping events (munmap / copy-on-write analogues).
//! There is no multi-level radix structure — a hash map keyed by virtual
//! page number is behaviourally equivalent for a trace-driven simulator,
//! and the page-walk *cost* is modelled separately by `sipt-tlb`.

use crate::addr::{
    PageSize, PhysAddr, PhysFrameNum, Translation, VirtAddr, VirtPageNum, PAGES_PER_HUGE_PAGE,
    PAGE_SHIFT,
};
use crate::MemError;
use std::collections::HashMap;

/// A single mapping entry: one 4 KiB page or one 2 MiB huge page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Mapping {
    /// First physical frame of the mapping.
    pub pfn: PhysFrameNum,
    /// Granularity: `Base4K` maps one frame, `Huge2M` maps 512 contiguous
    /// frames starting at a 512-aligned `pfn`.
    pub page_size: PageSize,
}

/// Statistics maintained by the page table.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PageTableStats {
    /// Number of live 4 KiB mappings.
    pub base_mappings: u64,
    /// Number of live 2 MiB mappings.
    pub huge_mappings: u64,
    /// Count of map operations ever performed.
    pub maps: u64,
    /// Count of unmap operations ever performed.
    pub unmaps: u64,
}

/// A per-address-space page table.
///
/// ```
/// use sipt_mem::{PageTable, VirtPageNum, PhysFrameNum, PageSize, VirtAddr};
/// let mut pt = PageTable::new();
/// pt.map(VirtPageNum::new(0x10), PhysFrameNum::new(0x42), PageSize::Base4K).unwrap();
/// let t = pt.translate(VirtAddr::new(0x10_123)).unwrap();
/// assert_eq!(t.pa.raw(), 0x42_123);
/// ```
#[derive(Debug, Clone, Default)]
pub struct PageTable {
    /// 4 KiB mappings keyed by VPN.
    base: HashMap<u64, PhysFrameNum>,
    /// 2 MiB mappings keyed by VPN of the first page (512-aligned).
    huge: HashMap<u64, PhysFrameNum>,
    stats: PageTableStats,
}

impl PageTable {
    /// Create an empty page table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Install a mapping at `vpn`.
    ///
    /// For `Huge2M`, both `vpn` and `pfn` must be 512-page aligned; the
    /// mapping covers 512 consecutive pages.
    ///
    /// # Errors
    ///
    /// [`MemError::AlreadyMapped`] if any covered page is already mapped;
    /// [`MemError::Misaligned`] if huge-page alignment is violated.
    pub fn map(
        &mut self,
        vpn: VirtPageNum,
        pfn: PhysFrameNum,
        page_size: PageSize,
    ) -> Result<(), MemError> {
        match page_size {
            PageSize::Base4K => {
                if self.lookup_raw(vpn).is_some() {
                    return Err(MemError::AlreadyMapped { vpn });
                }
                self.base.insert(vpn.raw(), pfn);
                self.stats.base_mappings += 1;
            }
            PageSize::Huge2M => {
                if !vpn.raw().is_multiple_of(PAGES_PER_HUGE_PAGE)
                    || !pfn.raw().is_multiple_of(PAGES_PER_HUGE_PAGE)
                {
                    return Err(MemError::Misaligned { vpn, page_size });
                }
                // Reject if any base page in the range is mapped.
                for i in 0..PAGES_PER_HUGE_PAGE {
                    if self.lookup_raw(vpn + i).is_some() {
                        return Err(MemError::AlreadyMapped { vpn: vpn + i });
                    }
                }
                self.huge.insert(vpn.raw(), pfn);
                self.stats.huge_mappings += 1;
            }
        }
        self.stats.maps += 1;
        Ok(())
    }

    /// Remove the mapping covering `vpn`, returning it.
    ///
    /// For a huge mapping, `vpn` may be any page inside the huge page; the
    /// entire huge mapping is removed.
    ///
    /// # Errors
    ///
    /// [`MemError::NotMapped`] when no mapping covers `vpn`.
    pub fn unmap(&mut self, vpn: VirtPageNum) -> Result<Mapping, MemError> {
        self.stats.unmaps += 1;
        if let Some(pfn) = self.base.remove(&vpn.raw()) {
            self.stats.base_mappings -= 1;
            return Ok(Mapping { pfn, page_size: PageSize::Base4K });
        }
        let huge_base = vpn.raw() & !(PAGES_PER_HUGE_PAGE - 1);
        if let Some(pfn) = self.huge.remove(&huge_base) {
            self.stats.huge_mappings -= 1;
            return Ok(Mapping { pfn, page_size: PageSize::Huge2M });
        }
        self.stats.unmaps -= 1;
        Err(MemError::NotMapped { vpn })
    }

    /// Look up the mapping covering `vpn` without translating an address.
    pub fn lookup(&self, vpn: VirtPageNum) -> Option<Mapping> {
        self.lookup_raw(vpn)
    }

    fn lookup_raw(&self, vpn: VirtPageNum) -> Option<Mapping> {
        if let Some(&pfn) = self.base.get(&vpn.raw()) {
            return Some(Mapping { pfn, page_size: PageSize::Base4K });
        }
        let huge_base = vpn.raw() & !(PAGES_PER_HUGE_PAGE - 1);
        self.huge.get(&huge_base).map(|&pfn| Mapping { pfn, page_size: PageSize::Huge2M })
    }

    /// Translate a virtual address.
    ///
    /// Returns `None` for unmapped addresses (the simulator treats that as
    /// a fault the workload layer must have prevented).
    pub fn translate(&self, va: VirtAddr) -> Option<Translation> {
        let vpn = VirtPageNum::containing(va);
        let mapping = self.lookup_raw(vpn)?;
        let (pa, pfn) = match mapping.page_size {
            PageSize::Base4K => {
                let pa = PhysAddr::new((mapping.pfn.raw() << PAGE_SHIFT) | va.page_offset());
                (pa, mapping.pfn)
            }
            PageSize::Huge2M => {
                let in_huge = vpn.raw() & (PAGES_PER_HUGE_PAGE - 1);
                let pfn = mapping.pfn + in_huge;
                let pa = PhysAddr::new((pfn.raw() << PAGE_SHIFT) | va.page_offset());
                (pa, pfn)
            }
        };
        Some(Translation { pa, pfn, page_size: mapping.page_size })
    }

    /// Iterate over all live mappings as `(first_vpn, mapping)` pairs, in
    /// unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (VirtPageNum, Mapping)> + '_ {
        let base = self
            .base
            .iter()
            .map(|(&v, &pfn)| (VirtPageNum::new(v), Mapping { pfn, page_size: PageSize::Base4K }));
        let huge = self
            .huge
            .iter()
            .map(|(&v, &pfn)| (VirtPageNum::new(v), Mapping { pfn, page_size: PageSize::Huge2M }));
        base.chain(huge)
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> PageTableStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_map_translate_unmap() {
        let mut pt = PageTable::new();
        pt.map(VirtPageNum::new(5), PhysFrameNum::new(9), PageSize::Base4K).unwrap();
        let t = pt.translate(VirtAddr::new((5 << PAGE_SHIFT) + 0xabc)).unwrap();
        assert_eq!(t.pa.raw(), (9 << PAGE_SHIFT) + 0xabc);
        assert_eq!(t.page_size, PageSize::Base4K);
        assert_eq!(t.pfn.raw(), 9);
        let m = pt.unmap(VirtPageNum::new(5)).unwrap();
        assert_eq!(m.pfn.raw(), 9);
        assert!(pt.translate(VirtAddr::new(5 << PAGE_SHIFT)).is_none());
    }

    #[test]
    fn huge_page_translation_offsets_pfn() {
        let mut pt = PageTable::new();
        pt.map(VirtPageNum::new(512), PhysFrameNum::new(1024), PageSize::Huge2M).unwrap();
        // Page 512+37 maps to frame 1024+37; offset preserved.
        let va = VirtAddr::new(((512 + 37) << PAGE_SHIFT) + 0x10);
        let t = pt.translate(va).unwrap();
        assert_eq!(t.pfn.raw(), 1024 + 37);
        assert_eq!(t.pa.page_offset(), 0x10);
        assert_eq!(t.page_size, PageSize::Huge2M);
        // Within a huge page all 9 index bits beyond the offset match
        // because VPN and PFN are both 512-aligned at the same offset.
        assert!(t.index_bits_unchanged(va, 9));
    }

    #[test]
    fn huge_map_requires_alignment() {
        let mut pt = PageTable::new();
        assert!(matches!(
            pt.map(VirtPageNum::new(1), PhysFrameNum::new(512), PageSize::Huge2M),
            Err(MemError::Misaligned { .. })
        ));
        assert!(matches!(
            pt.map(VirtPageNum::new(512), PhysFrameNum::new(3), PageSize::Huge2M),
            Err(MemError::Misaligned { .. })
        ));
    }

    #[test]
    fn overlapping_maps_rejected() {
        let mut pt = PageTable::new();
        pt.map(VirtPageNum::new(513), PhysFrameNum::new(7), PageSize::Base4K).unwrap();
        // Huge mapping overlapping the existing base page must fail.
        assert!(matches!(
            pt.map(VirtPageNum::new(512), PhysFrameNum::new(512), PageSize::Huge2M),
            Err(MemError::AlreadyMapped { .. })
        ));
        // And base page inside a huge mapping must fail.
        let mut pt = PageTable::new();
        pt.map(VirtPageNum::new(0), PhysFrameNum::new(0), PageSize::Huge2M).unwrap();
        assert!(matches!(
            pt.map(VirtPageNum::new(17), PhysFrameNum::new(99), PageSize::Base4K),
            Err(MemError::AlreadyMapped { .. })
        ));
    }

    #[test]
    fn unmap_huge_by_interior_page() {
        let mut pt = PageTable::new();
        pt.map(VirtPageNum::new(512), PhysFrameNum::new(512), PageSize::Huge2M).unwrap();
        let m = pt.unmap(VirtPageNum::new(512 + 100)).unwrap();
        assert_eq!(m.page_size, PageSize::Huge2M);
        assert!(pt.translate(VirtAddr::new(512 << PAGE_SHIFT)).is_none());
    }

    #[test]
    fn unmap_missing_errors() {
        let mut pt = PageTable::new();
        assert!(matches!(pt.unmap(VirtPageNum::new(4)), Err(MemError::NotMapped { .. })));
    }

    #[test]
    fn stats_track_mappings() {
        let mut pt = PageTable::new();
        pt.map(VirtPageNum::new(0), PhysFrameNum::new(0), PageSize::Huge2M).unwrap();
        pt.map(VirtPageNum::new(600), PhysFrameNum::new(3), PageSize::Base4K).unwrap();
        let s = pt.stats();
        assert_eq!(s.base_mappings, 1);
        assert_eq!(s.huge_mappings, 1);
        assert_eq!(s.maps, 2);
        pt.unmap(VirtPageNum::new(600)).unwrap();
        assert_eq!(pt.stats().base_mappings, 0);
        assert_eq!(pt.stats().unmaps, 1);
        assert_eq!(pt.iter().count(), 1);
    }
}
