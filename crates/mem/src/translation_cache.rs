//! A software translation cache for the simulator's hot path.
//!
//! [`PageTable::translate`] costs a `HashMap` probe (sometimes two) per
//! call — fine for OS-model bookkeeping, but it sits on the
//! per-memory-access path of every simulated run: TLB walks and the
//! speculation-profile loop both call it millions of times against an
//! address space that is **immutable during replay**. [`TranslationCache`]
//! is a small direct-mapped VPN→frame array in front of the page table:
//! one index + compare on a hit, no hashing, no invalidation protocol
//! (immutability makes stale entries impossible; call
//! [`TranslationCache::clear`] if an address space ever does change
//! between replays).
//!
//! This is simulator infrastructure, not modelled hardware: it changes
//! *wall-clock* cost only. The returned [`Translation`]s are exactly what
//! the backing page table would have produced, so simulated behaviour is
//! bit-identical with or without it.

use crate::addr::{
    PageSize, PhysAddr, PhysFrameNum, Translation, VirtAddr, VirtPageNum, PAGE_SHIFT,
};
use crate::page_table::PageTable;

/// Default number of direct-mapped entries (must be a power of two).
///
/// 4096 entries cover a 16 MiB resident set at 4 KiB pages — larger than
/// the hot working set of every benchmark preset — in 64 KiB of host
/// memory.
pub const DEFAULT_XLAT_ENTRIES: usize = 4096;

#[derive(Debug, Clone, Copy)]
struct Entry {
    vpn: u64,
    pfn: PhysFrameNum,
    page_size: PageSize,
}

/// Direct-mapped software cache of 4 KiB-granule translations.
///
/// ```
/// use sipt_mem::{PageTable, TranslationCache, VirtAddr, VirtPageNum, PhysFrameNum, PageSize};
/// let mut pt = PageTable::new();
/// pt.map(VirtPageNum::new(0x10), PhysFrameNum::new(0x42), PageSize::Base4K).unwrap();
/// let mut xlat = TranslationCache::new();
/// let va = VirtAddr::new(0x10_123);
/// assert_eq!(xlat.translate(&pt, va), pt.translate(va)); // miss + fill
/// assert_eq!(xlat.translate(&pt, va), pt.translate(va)); // hit
/// ```
#[derive(Debug, Clone)]
pub struct TranslationCache {
    entries: Vec<Option<Entry>>,
    mask: u64,
}

impl Default for TranslationCache {
    fn default() -> Self {
        Self::new()
    }
}

impl TranslationCache {
    /// A cache with [`DEFAULT_XLAT_ENTRIES`] entries.
    pub fn new() -> Self {
        Self::with_entries(DEFAULT_XLAT_ENTRIES)
    }

    /// A cache with `entries` direct-mapped slots.
    ///
    /// # Panics
    ///
    /// Panics unless `entries` is a non-zero power of two.
    pub fn with_entries(entries: usize) -> Self {
        assert!(entries.is_power_of_two(), "entry count {entries} must be a power of two");
        Self { entries: vec![None; entries], mask: entries as u64 - 1 }
    }

    /// Translate `va`, consulting the cache before `page_table`.
    ///
    /// Returns exactly what [`PageTable::translate`] would return; `None`
    /// (unmapped) is never cached, so faults always reach the page table.
    #[inline]
    pub fn translate(&mut self, page_table: &PageTable, va: VirtAddr) -> Option<Translation> {
        let vpn = VirtPageNum::containing(va).raw();
        let slot = (vpn & self.mask) as usize;
        if let Some(e) = self.entries[slot] {
            if e.vpn == vpn {
                let pa = PhysAddr::new((e.pfn.raw() << PAGE_SHIFT) | va.page_offset());
                return Some(Translation { pa, pfn: e.pfn, page_size: e.page_size });
            }
        }
        let t = page_table.translate(va)?;
        self.entries[slot] = Some(Entry { vpn, pfn: t.pfn, page_size: t.page_size });
        Some(t)
    }

    /// Drop every cached entry (required if the backing address space is
    /// mutated between replays).
    pub fn clear(&mut self) {
        self.entries.iter_mut().for_each(|e| *e = None);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::PAGES_PER_HUGE_PAGE;

    fn table() -> PageTable {
        let mut pt = PageTable::new();
        pt.map(VirtPageNum::new(5), PhysFrameNum::new(9), PageSize::Base4K).unwrap();
        pt.map(
            VirtPageNum::new(PAGES_PER_HUGE_PAGE),
            PhysFrameNum::new(4 * PAGES_PER_HUGE_PAGE),
            PageSize::Huge2M,
        )
        .unwrap();
        pt
    }

    #[test]
    fn agrees_with_page_table_for_base_and_huge() {
        let pt = table();
        let mut xlat = TranslationCache::with_entries(64);
        let vas = [
            VirtAddr::new((5 << PAGE_SHIFT) + 0xabc),
            VirtAddr::new((PAGES_PER_HUGE_PAGE << PAGE_SHIFT) + 0x10),
            VirtAddr::new(((PAGES_PER_HUGE_PAGE + 37) << PAGE_SHIFT) + 0x7),
        ];
        for va in vas {
            // Miss then hit: both must equal the uncached translation.
            assert_eq!(xlat.translate(&pt, va), pt.translate(va), "miss path for {va}");
            assert_eq!(xlat.translate(&pt, va), pt.translate(va), "hit path for {va}");
        }
    }

    #[test]
    fn unmapped_is_none_and_never_cached() {
        let pt = table();
        let mut xlat = TranslationCache::with_entries(64);
        let hole = VirtAddr::new(123 << PAGE_SHIFT);
        assert_eq!(xlat.translate(&pt, hole), None);
        // A later mapping at the same VPN must be visible (no negative
        // caching).
        let mut pt = pt;
        pt.map(VirtPageNum::new(123), PhysFrameNum::new(77), PageSize::Base4K).unwrap();
        assert_eq!(xlat.translate(&pt, hole), pt.translate(hole));
    }

    #[test]
    fn conflicting_vpns_evict_without_corruption() {
        let mut pt = PageTable::new();
        // VPNs 3 and 3+64 collide in a 64-entry cache.
        pt.map(VirtPageNum::new(3), PhysFrameNum::new(30), PageSize::Base4K).unwrap();
        pt.map(VirtPageNum::new(3 + 64), PhysFrameNum::new(40), PageSize::Base4K).unwrap();
        let mut xlat = TranslationCache::with_entries(64);
        let a = VirtAddr::new(3 << PAGE_SHIFT);
        let b = VirtAddr::new((3 + 64) << PAGE_SHIFT);
        for _ in 0..3 {
            assert_eq!(xlat.translate(&pt, a), pt.translate(a));
            assert_eq!(xlat.translate(&pt, b), pt.translate(b));
        }
    }

    #[test]
    fn clear_resets_entries() {
        let pt = table();
        let mut xlat = TranslationCache::with_entries(64);
        let va = VirtAddr::new(5 << PAGE_SHIFT);
        let _ = xlat.translate(&pt, va);
        xlat.clear();
        assert_eq!(xlat.translate(&pt, va), pt.translate(va));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        let _ = TranslationCache::with_entries(48);
    }
}
