#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # sipt-mem — OS virtual-memory substrate for the SIPT reproduction
//!
//! Everything below the architectural interface of the SIPT paper (Zheng,
//! Zhu & Erez, HPCA 2018) that decides *which physical frame backs which
//! virtual page*:
//!
//! - typed addresses and page numbers ([`VirtAddr`], [`PhysAddr`],
//!   [`VirtPageNum`], [`PhysFrameNum`]),
//! - a Linux-style binary [`buddy`] allocator whose bulk allocations create
//!   the VA→PA contiguity that makes SIPT's speculative index bits
//!   predictable,
//! - a [`PageTable`] with 4 KiB and transparent 2 MiB mappings,
//! - an mmap-style [`AddressSpace`] with pluggable [`PlacementPolicy`]
//!   (Linux default, THP off, fully scattered, page-colored),
//! - a [`frag`] fragmentation injector reproducing the paper's
//!   `Fu(9) > 0.95` sensitivity condition.
//!
//! ## Example
//!
//! ```
//! use sipt_mem::{AddressSpace, BuddyAllocator, PlacementPolicy, PAGE_SIZE};
//!
//! # fn main() -> Result<(), sipt_mem::MemError> {
//! let mut phys = BuddyAllocator::new(4096); // 16 MiB of frames
//! let mut proc0 = AddressSpace::new(0, PlacementPolicy::LinuxDefault);
//! let heap = proc0.mmap(512 * PAGE_SIZE, &mut phys)?;
//! let t = proc0.translate(heap.start + 64).expect("mapped");
//! assert_eq!(t.pa.page_offset(), 64);
//! # Ok(())
//! # }
//! ```

pub mod addr;
pub mod address_space;
pub mod buddy;
pub mod frag;
pub mod indexed_set;
pub mod page_table;
pub mod translation_cache;

pub use addr::{
    PageSize, PhysAddr, PhysFrameNum, Translation, VirtAddr, VirtPageNum, HUGE_PAGE_SHIFT,
    HUGE_PAGE_SIZE, PAGES_PER_HUGE_PAGE, PAGE_SHIFT, PAGE_SIZE,
};
pub use address_space::{AddressSpace, AddressSpaceStats, PlacementPolicy, Region};
pub use buddy::{BuddyAllocator, BuddyStats, FrameBlock, HUGE_PAGE_ORDER, MAX_ORDER};
pub use frag::{fragment_memory, fragment_to_target, FragmentHold, PAPER_TARGET_FU};
pub use page_table::{Mapping, PageTable, PageTableStats};
pub use translation_cache::{TranslationCache, DEFAULT_XLAT_ENTRIES};

use core::fmt;

/// Errors produced by the memory substrate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MemError {
    /// The buddy allocator has no free block of the requested (or any
    /// larger) order.
    OutOfMemory {
        /// The order that could not be satisfied.
        requested_order: u32,
    },
    /// A mapping already covers the virtual page.
    AlreadyMapped {
        /// The conflicting virtual page.
        vpn: VirtPageNum,
    },
    /// No mapping covers the virtual page.
    NotMapped {
        /// The missing virtual page.
        vpn: VirtPageNum,
    },
    /// Huge-page alignment requirements were violated.
    Misaligned {
        /// The requested virtual page.
        vpn: VirtPageNum,
        /// The granularity whose alignment was violated.
        page_size: PageSize,
    },
    /// An mmap of zero bytes was requested.
    EmptyMapping,
    /// The fragmentation injector could not reach the requested unusable
    /// free space index.
    FragmentationTarget {
        /// The index that was achieved.
        achieved: f64,
        /// The index that was requested.
        target: f64,
    },
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::OutOfMemory { requested_order } => {
                write!(f, "out of physical memory for order-{requested_order} block")
            }
            MemError::AlreadyMapped { vpn } => write!(f, "virtual page {vpn} already mapped"),
            MemError::NotMapped { vpn } => write!(f, "virtual page {vpn} not mapped"),
            MemError::Misaligned { vpn, page_size } => {
                write!(f, "mapping at {vpn} misaligned for {page_size} page")
            }
            MemError::EmptyMapping => write!(f, "cannot map an empty region"),
            MemError::FragmentationTarget { achieved, target } => {
                write!(f, "fragmentation reached Fu={achieved:.3}, target {target:.3}")
            }
        }
    }
}

impl std::error::Error for MemError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_nonempty() {
        let errs: Vec<MemError> = vec![
            MemError::OutOfMemory { requested_order: 9 },
            MemError::AlreadyMapped { vpn: VirtPageNum::new(1) },
            MemError::NotMapped { vpn: VirtPageNum::new(2) },
            MemError::Misaligned { vpn: VirtPageNum::new(3), page_size: PageSize::Huge2M },
            MemError::EmptyMapping,
            MemError::FragmentationTarget { achieved: 0.5, target: 0.95 },
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
            let _: &dyn std::error::Error = &e;
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MemError>();
    }
}
