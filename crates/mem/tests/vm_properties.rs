//! Virtual-memory properties across the buddy allocator, page tables and
//! address spaces, for arbitrary allocation programs.

use proptest::prelude::*;
use sipt_mem::*;

proptest! {
    /// For any sequence of mmaps under any policy: all mappings translate,
    /// no two virtual pages share a frame (within one space), and
    /// munmapping everything restores every frame.
    #[test]
    fn mmap_translate_munmap_roundtrip(
        sizes in proptest::collection::vec(1u64..64, 1..20),
        policy_sel in 0u8..4,
    ) {
        let policy = match policy_sel {
            0 => PlacementPolicy::LinuxDefault,
            1 => PlacementPolicy::ThpOff,
            2 => PlacementPolicy::Scattered,
            _ => PlacementPolicy::Colored { bits: 2 },
        };
        let total_frames = 1u64 << 14;
        let mut phys = BuddyAllocator::new(total_frames);
        let mut asp = AddressSpace::new(0, policy);
        let mut regions = Vec::new();
        let mut seen_frames = std::collections::HashSet::new();
        for &pages in &sizes {
            let region = asp.mmap(pages * PAGE_SIZE, &mut phys).unwrap();
            prop_assert_eq!(region.pages, pages);
            for i in 0..pages {
                let va = region.start + i * PAGE_SIZE + 13;
                let t = asp.translate(va).expect("mapped");
                prop_assert_eq!(t.pa.page_offset(), 13);
                prop_assert!(t.pfn.raw() < total_frames);
                prop_assert!(
                    seen_frames.insert(t.pfn.raw()),
                    "frame {} double-mapped", t.pfn
                );
            }
            regions.push(region);
        }
        let live: u64 = sizes.iter().sum();
        prop_assert_eq!(phys.free_frames(), total_frames - live);
        for region in regions {
            asp.munmap(region.start, &mut phys).unwrap();
        }
        prop_assert_eq!(phys.free_frames(), total_frames);
        prop_assert_eq!(phys.stats().free_blocks_per_order[MAX_ORDER as usize],
                        total_frames >> MAX_ORDER);
    }

    /// Synonym mappings never consume frames and share every translation.
    #[test]
    fn synonyms_share_frames_exactly(pages in 1u64..32) {
        let mut phys = BuddyAllocator::new(1 << 12);
        let mut asp = AddressSpace::new(0, PlacementPolicy::LinuxDefault);
        let original = asp.mmap(pages * PAGE_SIZE, &mut phys).unwrap();
        let free_before = phys.free_frames();
        let alias = asp.mmap_shared(&asp.clone(), original).unwrap();
        prop_assert_eq!(phys.free_frames(), free_before, "synonyms must not allocate");
        for i in 0..pages {
            let ta = asp.translate(original.start + i * PAGE_SIZE).unwrap();
            let tb = asp.translate(alias.start + i * PAGE_SIZE).unwrap();
            prop_assert_eq!(ta.pfn, tb.pfn);
        }
        // Unmapping the alias frees nothing; unmapping the original frees
        // everything.
        asp.munmap(alias.start, &mut phys).unwrap();
        prop_assert_eq!(phys.free_frames(), free_before);
        asp.munmap(original.start, &mut phys).unwrap();
        prop_assert_eq!(phys.free_frames(), 1 << 12);
    }

    /// The unusable-free-space index is always in [0, 1] and zero on
    /// pristine memory, for any allocation pattern.
    #[test]
    fn fu_index_bounds(orders in proptest::collection::vec(0u32..=MAX_ORDER, 0..40)) {
        let mut phys = BuddyAllocator::new(1 << 13);
        prop_assert_eq!(phys.unusable_free_space_index(HUGE_PAGE_ORDER), 0.0);
        let mut held = Vec::new();
        for &o in &orders {
            if let Ok(b) = phys.alloc(o) {
                held.push(b);
            }
            for j in 0..=MAX_ORDER {
                let fu = phys.unusable_free_space_index(j);
                prop_assert!((0.0..=1.0).contains(&fu), "Fu({j}) = {fu}");
            }
            // Fu is monotone non-decreasing in the requested order.
            let mut prev = 0.0;
            for j in 0..=MAX_ORDER {
                let fu = phys.unusable_free_space_index(j);
                prop_assert!(fu + 1e-12 >= prev);
                prev = fu;
            }
        }
    }
}

#[test]
fn colored_placement_guarantees_index_bits() {
    // Page coloring with k bits makes the low k index bits of every
    // translation invariant — the §II.D software alternative to SIPT.
    let mut phys = BuddyAllocator::new(1 << 13);
    let mut asp = AddressSpace::new(0, PlacementPolicy::Colored { bits: 3 });
    let region = asp.mmap(128 * PAGE_SIZE, &mut phys).unwrap();
    for i in 0..128u64 {
        let va = region.start + i * PAGE_SIZE;
        let t = asp.translate(va).unwrap();
        assert!(t.index_bits_unchanged(va, 3), "page {i}");
    }
}
