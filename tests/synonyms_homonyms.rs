//! The correctness cases that kill VIVT designs (paper §II.B) and that a
//! physically-tagged SIPT L1 must handle with no extra hardware:
//! synonyms (many VAs → one PA) and homonyms (one VA → many PAs across
//! address spaces).

use sipt_cache::LineAddr;
use sipt_core::{sipt_32k_2w, table2_sipt_configs, SiptL1};
use sipt_cpu::{MemOp, MemRef, MemoryPath};
use sipt_mem::{AddressSpace, BuddyAllocator, PlacementPolicy, VirtAddr, PAGE_SIZE};
use sipt_sim::{Machine, SystemKind};

fn space_with_alias() -> (AddressSpace, VirtAddr, VirtAddr) {
    let mut phys = BuddyAllocator::with_bytes(64 << 20);
    let mut asp = AddressSpace::new(0, PlacementPolicy::LinuxDefault);
    let original = asp.mmap(8 * PAGE_SIZE, &mut phys).expect("mmap");
    let alias = asp.mmap_shared(&asp.clone(), original).expect("alias");
    (asp, original.start, alias.start)
}

#[test]
fn synonyms_translate_to_one_physical_line() {
    let (asp, va_a, va_b) = space_with_alias();
    assert_ne!(va_a, va_b);
    let ta = asp.translate(va_a).unwrap();
    let tb = asp.translate(va_b).unwrap();
    assert_eq!(ta.pa, tb.pa);
    assert_eq!(LineAddr::of_phys(ta.pa), LineAddr::of_phys(tb.pa));
}

#[test]
fn synonym_hits_one_cached_copy_in_every_sipt_config() {
    for cfg in table2_sipt_configs() {
        let (asp, va_a, va_b) = space_with_alias();
        let name = cfg.name;
        let mut machine = Machine::new(asp, cfg, SystemKind::OooThreeLevel);
        machine.access(0x100, MemRef { op: MemOp::Store, va: va_a }, 0);
        let hit = machine.access(0x104, MemRef { op: MemOp::Load, va: va_b }, 100);
        let stats = machine.l1().stats();
        assert_eq!(stats.misses, 1, "{name}: alias must hit the single copy ({hit:?})");
        assert_eq!(stats.hits, 1, "{name}");
    }
}

#[test]
fn synonym_write_through_either_name_dirties_the_same_line() {
    let (asp, va_a, va_b) = space_with_alias();
    let pa_line = LineAddr::of_phys(asp.translate(va_a).unwrap().pa);
    let mut machine = Machine::new(asp, sipt_32k_2w(), SystemKind::OooThreeLevel);
    machine.access(0x100, MemRef { op: MemOp::Load, va: va_a }, 0);
    machine.access(0x104, MemRef { op: MemOp::Store, va: va_b }, 100);
    // Exactly one resident line, and it is dirty.
    let array = machine.l1().array();
    let set = array.home_set(pa_line);
    let way = array.probe(set, pa_line).expect("line resident");
    assert!(array.line_at(set, way).unwrap().dirty);
    assert_eq!(array.resident_lines(), 1, "a synonym must never create a second copy");
}

#[test]
fn synonyms_with_different_index_bits_still_find_the_line() {
    // Force the two names to differ in their speculative index bits: the
    // alias region starts at a VA whose bits[12..14) differ from the
    // original's. The SIPT predictors may misspeculate on the alias — at
    // worst costing a replay — but must never produce a duplicate or miss
    // the physical copy after the fill.
    let (asp, va_a, _) = space_with_alias();
    let t = asp.translate(va_a).unwrap();
    let mut machine = Machine::new(asp, sipt_32k_2w(), SystemKind::OooThreeLevel);
    machine.access(0x100, MemRef { op: MemOp::Store, va: va_a }, 0);
    // Second page of the buffer via the original name, same line via math:
    let same_line_va = va_a + 8;
    machine.access(0x100, MemRef { op: MemOp::Load, va: same_line_va }, 50);
    let stats = machine.l1().stats();
    assert_eq!(stats.misses, 1);
    assert_eq!(machine.l1().array().resident_lines(), 1);
    let _ = t;
}

#[test]
fn homonyms_resolve_through_per_process_page_tables() {
    // Two processes use the SAME virtual address for different physical
    // memory. Each machine owns its address space (per-core, as in the
    // simulator), so the shared VA maps to different physical lines and
    // the physically-tagged L1s never confuse them.
    let mut phys = BuddyAllocator::with_bytes(64 << 20);
    let mut p0 = AddressSpace::new(0, PlacementPolicy::LinuxDefault);
    let mut p1 = AddressSpace::new(1, PlacementPolicy::LinuxDefault);
    let r0 = p0.mmap(4 * PAGE_SIZE, &mut phys).unwrap();
    let r1 = p1.mmap(4 * PAGE_SIZE, &mut phys).unwrap();
    assert_eq!(r0.start, r1.start, "same VA in both processes (homonym)");
    let pa0 = p0.translate(r0.start).unwrap().pa;
    let pa1 = p1.translate(r1.start).unwrap().pa;
    assert_ne!(pa0, pa1, "backed by different frames");

    let mut m0 = Machine::new(p0, sipt_32k_2w(), SystemKind::OooThreeLevel);
    let mut m1 = Machine::new(p1, sipt_32k_2w(), SystemKind::OooThreeLevel);
    m0.access(0x100, MemRef { op: MemOp::Store, va: r0.start }, 0);
    m1.access(0x100, MemRef { op: MemOp::Load, va: r1.start }, 0);
    // Each L1 holds its own process's line at a *different* physical line
    // address.
    let l0 = LineAddr::of_phys(pa0);
    let l1 = LineAddr::of_phys(pa1);
    assert!(m0.l1().array().probe(m0.l1().array().home_set(l0), l0).is_some());
    assert!(m1.l1().array().probe(m1.l1().array().home_set(l1), l1).is_some());
    assert!(m0.l1().array().probe(m0.l1().array().home_set(l1), l1).is_none());
}

#[test]
fn wrong_set_speculative_probe_never_false_hits() {
    // Direct unit check at the integration level: fill a line, then probe
    // every *other* set of the array for it — all must miss (full-address
    // tags). This is the property that lets SIPT cache synonyms safely.
    let mut l1 = SiptL1::new(sipt_32k_2w());
    let line = LineAddr(0xABCD);
    l1.fill(line, false);
    let array = l1.array();
    let home = array.home_set(line);
    let sets = array.geometry().sets();
    for set in 0..sets {
        if set != home {
            assert!(array.probe(set, line).is_none(), "false hit in set {set}");
        }
    }
    assert!(array.probe(home, line).is_some());
}
