//! Smoke tests over every figure driver: each produces well-formed rows
//! whose internal arithmetic holds (fractions partition, normalizations
//! positive, tables render). Runs at tiny scale; the shape assertions that
//! mirror the paper live in the drivers' own unit tests.

use sipt_sim::experiments::{
    bypass, combined, fig01, ideal, naive, quadcore, sensitivity, speculation, waypred,
};
use sipt_sim::Condition;

fn tiny() -> Condition {
    Condition { instructions: 8_000, warmup: 2_000, ..Condition::default() }
}

const BENCHES: [&str; 3] = ["libquantum", "calculix", "sjeng"];

#[test]
fn fig01_rows_are_well_formed() {
    let rows = fig01::run();
    assert_eq!(rows.len(), 20);
    for r in &rows {
        assert!(r.min <= r.mean && r.mean <= r.max, "{r:?}");
        assert!(r.min > 0.0);
    }
    assert!(!fig01::render(&rows).is_empty());
}

#[test]
fn fig02_fig03_normalizations_positive() {
    for fig in [ideal::fig2(&BENCHES, &tiny()), ideal::fig3(&BENCHES, &tiny())] {
        assert_eq!(fig.rows.len(), BENCHES.len());
        for row in &fig.rows {
            assert_eq!(row.normalized_ipc.len(), 5);
            for &v in &row.normalized_ipc {
                assert!(v > 0.3 && v < 3.0, "{}: {v}", row.benchmark);
            }
        }
        assert!(!ideal::render(&fig).is_empty());
    }
}

#[test]
fn fig05_profiles_are_probabilities() {
    let rows = speculation::fig5(&BENCHES, &tiny());
    for r in &rows {
        for &u in &r.profile.unchanged {
            assert!((0.0..=1.0).contains(&u));
        }
        assert!((0.0..=1.0).contains(&r.profile.hugepage));
        assert!(r.profile.accesses > 0);
    }
    assert!(!speculation::render(&rows).is_empty());
}

#[test]
fn fig06_07_rows_consistent() {
    let (rows, summary) = naive::fig6_fig7(&BENCHES, &tiny());
    for r in &rows {
        assert!(r.normalized_ipc > 0.3);
        assert!(r.normalized_energy > 0.2 && r.normalized_energy < 1.5);
        assert!(r.extra_accesses >= -0.5);
        assert!((0.0..=1.0).contains(&r.fast_fraction));
    }
    assert!(summary.mean_energy > 0.0);
    assert!(!naive::render(&rows, &summary).is_empty());
}

#[test]
fn fig09_outcomes_partition() {
    for r in bypass::fig9(&BENCHES, &tiny()) {
        for b in &r.by_bits {
            let sum =
                b.correct_speculation + b.correct_bypass + b.opportunity_loss + b.extra_access;
            assert!((sum - 1.0).abs() < 1e-9, "{}: {sum}", r.benchmark);
        }
    }
}

#[test]
fn fig12_outcomes_partition() {
    for r in combined::fig12(&BENCHES, &tiny()) {
        for b in &r.by_bits {
            let sum = b.correct_speculation + b.idb_hit + b.slow;
            assert!((sum - 1.0).abs() < 1e-9, "{}: {sum}", r.benchmark);
            assert_eq!(b.fast(), b.correct_speculation + b.idb_hit);
        }
    }
}

#[test]
fn fig13_14_summaries_within_bounds() {
    let (rows, summary) = combined::fig13_fig14(&BENCHES, &tiny());
    assert_eq!(rows.len(), 3);
    assert!(summary.mean_ipc > 0.9 && summary.mean_ipc < 1.5);
    assert!(summary.mean_energy > 0.3 && summary.mean_energy < 1.1);
    assert!(!combined::render_fig13_fig14(&rows, &summary).is_empty());
}

#[test]
fn fig15_mixes_have_four_speedups() {
    let c = Condition { memory_bytes: 4 << 30, instructions: 5_000, warmup: 1_000, ..tiny() };
    let (rows, summary) = quadcore::fig15(&["mix0"], &c);
    assert_eq!(rows[0].speedup.len(), 4);
    assert_eq!(summary.mean_speedup.len(), 4);
    for &s in &rows[0].speedup {
        assert!(s > 0.5 && s < 2.0);
    }
    assert!(!quadcore::render(&rows, &summary).is_empty());
}

#[test]
fn fig16_17_accuracies_are_probabilities() {
    let (rows, summary) = waypred::fig16_fig17(&BENCHES, &tiny());
    for r in &rows {
        assert!((0.0..=1.0).contains(&r.base_wp_accuracy), "{r:?}");
        assert!((0.0..=1.0).contains(&r.sipt_wp_accuracy));
    }
    assert!(summary.sipt_accuracy > summary.base_accuracy);
    assert!(!waypred::render(&rows, &summary).is_empty());
}

#[test]
fn fig18_has_eight_groups_of_four() {
    let groups = sensitivity::fig18(&["libquantum"], &tiny());
    assert_eq!(groups.len(), 8);
    for g in &groups {
        assert_eq!(g.mean_ipc.len(), 4);
        assert_eq!(g.mean_energy.len(), 4);
        assert_eq!(g.accuracy.len(), 4);
        for &a in &g.accuracy {
            assert!((0.0..=1.0).contains(&a), "{}: {a}", g.label);
        }
    }
    assert!(!sensitivity::render(&groups).is_empty());
}
