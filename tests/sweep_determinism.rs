//! The parallel sweep engine must be invisible in the results: the same
//! submission order must produce bit-identical metrics and reports for
//! any worker count. Scheduling may only change *when* a run executes,
//! never its inputs — these tests pin that contract for jobs ∈ {1, 2, 8}.

use sipt_core::{baseline_32k_8w_vipt, sipt_32k_2w, sipt_64k_4w, L1Policy};
use sipt_sim::experiments::{report::run_summary_json, smoke_benchmarks};
use sipt_sim::{Condition, RunMetrics, Sweep, SystemKind};
use sipt_telemetry::json::Json;

/// A sweep shaped like a real figure driver: smoke benchmarks × three
/// configurations across both system models.
fn figure_like_sweep() -> Sweep {
    let cond = Condition::quick();
    let mut sweep = Sweep::new();
    for &bench in &smoke_benchmarks() {
        sweep.bench(bench, baseline_32k_8w_vipt(), SystemKind::OooThreeLevel, &cond);
        sweep.bench(bench, sipt_32k_2w(), SystemKind::OooThreeLevel, &cond);
        sweep.bench(
            bench,
            sipt_64k_4w().with_policy(L1Policy::Ideal),
            SystemKind::InOrderTwoLevel,
            &cond,
        );
    }
    sweep
}

fn run_with(jobs: usize) -> Vec<RunMetrics> {
    figure_like_sweep().run_with_jobs(jobs).metrics
}

/// Everything except the wall-clock phase profile (and the worker id it
/// carries) must match exactly. Phases measure host time, which any
/// scheduler legitimately changes.
fn assert_simulation_identical(a: &[RunMetrics], b: &[RunMetrics], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: run count");
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.name, y.name, "{what}: submission order");
        assert_eq!(x.core, y.core, "{what}: {} core", x.name);
        assert_eq!(x.sipt, y.sipt, "{what}: {} sipt", x.name);
        assert_eq!(x.tlb, y.tlb, "{what}: {} tlb", x.name);
        assert_eq!(x.l2, y.l2, "{what}: {} l2", x.name);
        assert_eq!(x.llc, y.llc, "{what}: {} llc", x.name);
        assert_eq!(x.dram, y.dram, "{what}: {} dram", x.name);
        assert_eq!(x.energy, y.energy, "{what}: {} energy", x.name);
        assert_eq!(x.way_pred, y.way_pred, "{what}: {} way_pred", x.name);
        assert_eq!(x.huge_fraction, y.huge_fraction, "{what}: {} hugepages", x.name);
    }
}

/// One run's report JSON with the host-time-dependent `phases` object
/// masked out, rendered to bytes (object keys render in deterministic
/// order, so equal strings mean equal reports).
fn comparable_report(m: &RunMetrics) -> String {
    let mut json = run_summary_json(m);
    json.insert("phases", Json::str("masked"));
    json.render()
}

#[test]
fn serial_and_two_workers_agree() {
    let serial = run_with(1);
    let parallel = run_with(2);
    assert_simulation_identical(&serial, &parallel, "jobs 1 vs 2");
}

#[test]
fn two_and_eight_workers_agree() {
    // 8 workers on a sweep this size forces heavy interleaving (more
    // workers than distinct benchmarks), so any shared mutable state
    // between runs would show up here.
    let two = run_with(2);
    let eight = run_with(8);
    assert_simulation_identical(&two, &eight, "jobs 2 vs 8");
}

#[test]
fn report_payloads_are_byte_identical_across_job_counts() {
    let serial: Vec<String> = run_with(1).iter().map(comparable_report).collect();
    let eight: Vec<String> = run_with(8).iter().map(comparable_report).collect();
    assert_eq!(serial, eight, "masked report JSON must not depend on the worker count");
}

#[test]
fn oversubscribed_pool_handles_tiny_sweeps() {
    // Fewer tasks than workers: the pool must clamp, not deadlock or
    // reorder.
    let cond = Condition::quick();
    let mut sweep = Sweep::new();
    sweep.bench("sjeng", sipt_32k_2w(), SystemKind::OooThreeLevel, &cond);
    let result = sweep.run_with_jobs(8);
    assert_eq!(result.metrics.len(), 1);
    assert_eq!(result.profile.jobs, 1, "one task needs one worker");

    let mut sweep = Sweep::new();
    sweep.bench("sjeng", sipt_32k_2w(), SystemKind::OooThreeLevel, &cond);
    let serial = sweep.run_with_jobs(1);
    assert_simulation_identical(&result.metrics, &serial.metrics, "tiny sweep");
}

#[test]
fn profile_accounts_for_every_task() {
    let result = figure_like_sweep().run_with_jobs(2);
    let profile = &result.profile;
    assert_eq!(profile.tasks, result.metrics.len());
    assert_eq!(profile.assigned_worker.len(), profile.tasks);
    assert!(profile.assigned_worker.iter().all(|&w| w < profile.jobs));
    // The recorded worker id is threaded into each run's phase profile.
    for (m, &w) in result.metrics.iter().zip(&profile.assigned_worker) {
        assert_eq!(m.phases.worker, w);
    }
    assert!(profile.total_busy_ms() > 0.0, "sweep did real work");
    assert!(profile.wall_ms > 0.0);
}
