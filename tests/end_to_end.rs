//! End-to-end integration tests spanning every crate: OS memory model →
//! TLB → SIPT L1 → L2/LLC → DRAM → core timing → energy accounting.

use sipt_core::{
    baseline_32k_8w_vipt, sipt_32k_2w, small_16k_4w_vipt, table2_sipt_configs, L1Policy,
};
use sipt_sim::{run_benchmark, Condition, SystemKind};

fn cond() -> Condition {
    Condition::quick()
}

#[test]
fn policy_ordering_ideal_bounds_sipt_bounds_naive() {
    // For a misspeculation-heavy workload, the paper's ordering must hold:
    // ideal ≥ combined ≥ naive in IPC (ties allowed within noise).
    let c = cond();
    let system = SystemKind::OooThreeLevel;
    let base = run_benchmark("calculix", baseline_32k_8w_vipt(), system, &c);
    let naive =
        run_benchmark("calculix", sipt_32k_2w().with_policy(L1Policy::SiptNaive), system, &c);
    let combined = run_benchmark("calculix", sipt_32k_2w(), system, &c);
    let ideal = run_benchmark("calculix", sipt_32k_2w().with_policy(L1Policy::Ideal), system, &c);
    let (n, s, i) = (naive.ipc_vs(&base), combined.ipc_vs(&base), ideal.ipc_vs(&base));
    assert!(i + 0.01 >= s, "ideal {i} must bound combined {s}");
    assert!(s + 0.01 >= n, "combined {s} must bound naive {n}");
    // And the naive variant must produce strictly more array reads.
    assert!(naive.sipt.extra_accesses > combined.sipt.extra_accesses);
}

#[test]
fn pipt_is_slowest_indexing_policy() {
    let c = cond();
    let system = SystemKind::OooThreeLevel;
    let pipt = run_benchmark("hmmer", sipt_32k_2w().with_policy(L1Policy::Pipt), system, &c);
    let sipt = run_benchmark("hmmer", sipt_32k_2w(), system, &c);
    assert!(
        sipt.ipc() > pipt.ipc(),
        "SIPT {} must beat PIPT {} at equal geometry",
        sipt.ipc(),
        pipt.ipc()
    );
}

#[test]
fn every_table2_config_beats_its_pipt_self() {
    let c = cond();
    for cfg in table2_sipt_configs() {
        let pipt = run_benchmark(
            "sjeng",
            cfg.clone().with_policy(L1Policy::Pipt),
            SystemKind::OooThreeLevel,
            &c,
        );
        let sipt = run_benchmark("sjeng", cfg.clone(), SystemKind::OooThreeLevel, &c);
        assert!(
            sipt.ipc() >= pipt.ipc(),
            "{}: SIPT {} vs PIPT {}",
            cfg.name,
            sipt.ipc(),
            pipt.ipc()
        );
    }
}

#[test]
fn energy_accounting_is_consistent() {
    let c = cond();
    let m = run_benchmark("libquantum", sipt_32k_2w(), SystemKind::OooThreeLevel, &c);
    let e = m.energy;
    assert!(e.total() > 0.0);
    assert!(e.dynamic() < e.total(), "static energy must be nonzero");
    // Components are individually non-negative and sum to the total.
    let sum = e.l1_dynamic
        + e.l1_static
        + e.l2_dynamic
        + e.l2_static
        + e.llc_dynamic
        + e.llc_static
        + e.predictor;
    assert!((sum - e.total()).abs() < 1e-15);
    // A speculating config pays a (tiny) predictor charge.
    assert!(e.predictor > 0.0);
    assert!(e.predictor < 0.02 * (e.l1_dynamic + e.l1_static));
}

#[test]
fn feasible_vipt_configs_never_speculate() {
    let c = cond();
    for cfg in [baseline_32k_8w_vipt(), small_16k_4w_vipt()] {
        let m = run_benchmark("gcc", cfg, SystemKind::OooThreeLevel, &c);
        assert_eq!(m.sipt.extra_accesses, 0);
        assert_eq!(m.sipt.fast_accesses, 0, "VIPT accesses are NotSpeculative");
        assert_eq!(m.sipt.array_reads, m.sipt.accesses);
        assert_eq!(m.energy.predictor, 0.0);
    }
}

#[test]
fn stats_are_internally_consistent() {
    let c = cond();
    for bench in ["mcf", "calculix", "graph500"] {
        let m = run_benchmark(bench, sipt_32k_2w(), SystemKind::OooThreeLevel, &c);
        let s = m.sipt;
        assert_eq!(s.hits + s.misses, s.accesses, "{bench}");
        // Every demand access does ≥1 array read; extras add exactly one.
        assert!(s.array_reads >= s.accesses + s.extra_accesses, "{bench}");
        // Outcome classes partition the accesses for a combined-policy run.
        assert_eq!(
            s.correct_speculation + s.idb_hits + s.extra_accesses,
            s.accesses,
            "{bench}: combined policy outcomes must partition"
        );
        // TLB serviced every demand access exactly once.
        assert_eq!(m.tlb.total(), s.accesses, "{bench}");
        // The L2 saw exactly the L1 misses (demand side).
        assert_eq!(m.l2.unwrap().accesses, s.misses, "{bench}");
    }
}

#[test]
fn in_order_and_ooo_disagree_on_best_config() {
    // The paper's motivation: OOO prefers the low-latency 32K 2-way;
    // in-order prefers capacity. At minimum, the in-order speedup of the
    // larger cache must exceed its OOO speedup relative to the small one.
    let c = cond();
    let io_base = run_benchmark("sjeng", baseline_32k_8w_vipt(), SystemKind::InOrderTwoLevel, &c);
    let io_big = run_benchmark(
        "sjeng",
        sipt_core::sipt_64k_4w().with_policy(L1Policy::Ideal),
        SystemKind::InOrderTwoLevel,
        &c,
    );
    assert!(
        io_big.ipc_vs(&io_base) > 1.0,
        "in-order must benefit from a larger L1: {}",
        io_big.ipc_vs(&io_base)
    );
}

#[test]
fn dram_row_buffer_behaviour_shows_through() {
    // A streaming workload must enjoy a far better DRAM row-hit rate than
    // a pointer chaser — checks the whole path down to the DRAM model.
    let c = cond();
    let stream = run_benchmark("libquantum", baseline_32k_8w_vipt(), SystemKind::OooThreeLevel, &c);
    let chase = run_benchmark("mcf", baseline_32k_8w_vipt(), SystemKind::OooThreeLevel, &c);
    assert!(
        stream.dram.row_hit_rate() > chase.dram.row_hit_rate(),
        "stream {} vs chase {}",
        stream.dram.row_hit_rate(),
        chase.dram.row_hit_rate()
    );
}

#[test]
fn way_prediction_composes_with_every_policy() {
    let c = cond();
    for cfg in [
        baseline_32k_8w_vipt().with_way_prediction(true),
        sipt_32k_2w().with_way_prediction(true),
        sipt_32k_2w().with_policy(L1Policy::SiptNaive).with_way_prediction(true),
    ] {
        let m = run_benchmark("sjeng", cfg, SystemKind::OooThreeLevel, &c);
        let wp = m.way_pred.expect("way predictor enabled");
        assert!(wp.correct + wp.wrong > 0, "predictions must be recorded");
        assert!(wp.accuracy() > 0.2);
    }
}

#[test]
fn machine_readable_report_round_trips_with_histograms() {
    // The full telemetry path: run a benchmark, build the standard report
    // envelope, write it to disk, parse it back, and check the quantities
    // an external consumer would rely on (IPC, replay rate, histograms).
    use sipt_sim::experiments::report::run_summary_json;
    use sipt_telemetry::json::{self, Json};
    use sipt_telemetry::report;

    let m = run_benchmark("hmmer", sipt_32k_2w(), SystemKind::OooThreeLevel, &cond());
    let envelope = report::envelope("e2e", run_summary_json(&m));
    let dir = std::env::temp_dir().join(format!("sipt-e2e-{}", std::process::id()));
    let path = report::write_report(&dir, "e2e", &envelope).expect("report written");
    let text = std::fs::read_to_string(&path).expect("report readable");
    std::fs::remove_dir_all(&dir).ok();

    let parsed = json::parse(&text).expect("report parses back");
    assert_eq!(parsed.path("schema_version").and_then(Json::as_f64), Some(6.0));
    assert_eq!(parsed.path("artifact").and_then(Json::as_str), Some("e2e"));

    let ipc = parsed.path("payload.ipc").and_then(Json::as_f64).expect("ipc present");
    assert!(ipc > 0.0, "ipc must be positive, got {ipc}");

    let replay = parsed
        .path("payload.sipt.replay_rate")
        .and_then(Json::as_f64)
        .expect("replay_rate present");
    assert!(replay.is_finite() && replay >= 0.0, "replay rate {replay}");

    // The attached L1 telemetry snapshot must carry at least one histogram
    // (latency is always observed), with buckets and a matching count.
    // Histogram names contain dots, so walk with `get` rather than `path`.
    let hist = parsed
        .path("payload.l1.histograms")
        .and_then(|h| h.get("l1.latency"))
        .expect("l1.latency histogram present");
    let count = hist.get("count").and_then(Json::as_f64).expect("histogram count");
    assert!(count > 0.0, "latency histogram must be populated");
    let buckets = hist.get("buckets").and_then(Json::as_arr).expect("buckets array");
    assert!(!buckets.is_empty());
}
