//! Subprocess proof that the `SIPT_TLB_BATCH=0` escape hatch is
//! payload-invariant.
//!
//! The in-process golden tests (`kernel_bit_identity.rs`) flip the knob
//! through [`sipt_sim::set_tlb_batch`]; this test exercises the *other*
//! half of the contract — the environment parse that a triage session
//! would actually use — by re-executing this test binary as a worker with
//! the variable set, and comparing the fig02 payload fingerprint printed
//! by each child. Both children must agree with each other and with the
//! committed golden, byte for byte.

use sipt_sim::experiments::{ideal, report, smoke_benchmarks};
use sipt_sim::{set_jobs, tlb_batch_enabled, Condition};
use std::process::Command;

/// FNV-1a 64-bit — same fingerprint function as `kernel_bit_identity.rs`.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// fig02 golden fingerprint, mirrored from `kernel_bit_identity.rs` (the
/// two constants are re-pinned together when behaviour intentionally
/// changes).
const FIG02_GOLDEN_FNV1A: u64 = 0xF633_03AE_7922_41E7;

/// Worker half: inert in a normal test run; under `SIPT_TLB_BATCH_WORKER`
/// it computes the serial fig02 payload in a fresh process (so the
/// environment parse, not the programmatic override, decides the mode)
/// and prints machine-readable marker lines for the parent.
#[test]
fn tlb_batch_payload_worker() {
    if std::env::var("SIPT_TLB_BATCH_WORKER").is_err() {
        return;
    }
    set_jobs(1);
    let payload = report::ideal_json(&ideal::fig2(&smoke_benchmarks(), &Condition::quick()));
    println!("TLB_BATCH_MODE={}", u8::from(tlb_batch_enabled()));
    println!("PAYLOAD_FNV={:#018x}", fnv1a(payload.render().as_bytes()));
}

/// Re-exec the worker with and without `SIPT_TLB_BATCH=0` and require
/// byte-identical payloads that match the committed golden.
#[test]
fn env_guard_disables_batching_without_changing_payload_bytes() {
    let exe = std::env::current_exe().expect("test binary path");
    let run = |batch_env: Option<&str>| -> (bool, u64) {
        let mut cmd = Command::new(&exe);
        cmd.args(["tlb_batch_payload_worker", "--exact", "--nocapture"])
            .env("SIPT_TLB_BATCH_WORKER", "1");
        if let Some(v) = batch_env {
            cmd.env("SIPT_TLB_BATCH", v);
        } else {
            cmd.env_remove("SIPT_TLB_BATCH");
        }
        let out = cmd.output().expect("spawn worker");
        let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
        assert!(
            out.status.success(),
            "worker failed (SIPT_TLB_BATCH={batch_env:?}):\n{stdout}\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
        // The libtest harness may glue its "test ... " progress prefix
        // onto the worker's first line, so match the key mid-line.
        let find = |key: &str| {
            stdout
                .lines()
                .find_map(|l| l.split(key).nth(1))
                .unwrap_or_else(|| panic!("worker printed no {key} line:\n{stdout}"))
                .trim()
                .to_owned()
        };
        let mode = find("TLB_BATCH_MODE=") == "1";
        let fnv_hex = find("PAYLOAD_FNV=");
        let fnv = u64::from_str_radix(fnv_hex.trim_start_matches("0x"), 16)
            .unwrap_or_else(|e| panic!("bad PAYLOAD_FNV {fnv_hex:?}: {e}"));
        (mode, fnv)
    };

    let (default_mode, default_fnv) = run(None);
    let (disabled_mode, disabled_fnv) = run(Some("0"));
    assert!(default_mode, "batching must default on in a fresh process");
    assert!(!disabled_mode, "SIPT_TLB_BATCH=0 must disable batching");
    assert_eq!(default_fnv, disabled_fnv, "disabling TLB batching changed the fig02 payload bytes");
    assert_eq!(default_fnv, FIG02_GOLDEN_FNV1A, "fig02 payload drifted from the committed golden");
}
