//! Span-tracing contract tests: the *structure* of the span tree a
//! serial sweep emits is deterministic (pinned by a golden fingerprint),
//! and the Chrome trace-event export of a parallel sweep is well-formed
//! (balanced per-track begin/end nesting, labeled worker tracks).
//!
//! Host timestamps are wall-clock and excluded from every assertion —
//! only event order, phases, names (digit runs normalized), categories,
//! and virtual thread ids are pinned.
//!
//! The span sink is process-global, so every test here serializes on a
//! gate mutex and arms/resets the sink itself.

use sipt_core::{baseline_32k_8w_vipt, sipt_32k_2w, sipt_64k_4w, L1Policy};
use sipt_sim::experiments::smoke_benchmarks;
use sipt_sim::{prep_cache, Condition, Sweep, SystemKind};
use sipt_telemetry::json::Json;
use sipt_telemetry::span::{self, SpanEvent, SpanPhase};
use std::sync::{Mutex, PoisonError};

static GATE: Mutex<()> = Mutex::new(());

/// Run `f` with the span sink armed and clean, restoring the disabled
/// default afterwards. Also clears the prep cache so hit/miss outcomes
/// don't depend on which test ran first.
fn with_traced_sink<R>(f: impl FnOnce() -> R) -> R {
    let _g = GATE.lock().unwrap_or_else(PoisonError::into_inner);
    prep_cache::clear();
    span::reset();
    span::set_enabled(true);
    let out = f();
    span::set_enabled(false);
    span::reset();
    span::clear_virtual_tid();
    out
}

/// A small figure-shaped sweep: every smoke benchmark against three
/// configurations across both system models.
fn figure_like_sweep() -> Sweep {
    let cond = Condition::quick();
    let mut sweep = Sweep::new();
    for &bench in &smoke_benchmarks() {
        sweep.bench(bench, baseline_32k_8w_vipt(), SystemKind::OooThreeLevel, &cond);
        sweep.bench(bench, sipt_32k_2w(), SystemKind::OooThreeLevel, &cond);
        sweep.bench(
            bench,
            sipt_64k_4w().with_policy(L1Policy::Ideal),
            SystemKind::InOrderTwoLevel,
            &cond,
        );
    }
    sweep
}

/// Replace every ASCII digit run with `#`: sweep sequence numbers are a
/// process-global counter, so `sweep 3` must fingerprint like `sweep 7`.
fn normalize(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    let mut in_digits = false;
    for c in name.chars() {
        if c.is_ascii_digit() {
            if !in_digits {
                out.push('#');
                in_digits = true;
            }
        } else {
            out.push(c);
            in_digits = false;
        }
    }
    out
}

/// FNV-1a over the normalized `(phase, tid, cat, name)` sequence.
fn structure_fingerprint(events: &[SpanEvent]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0100_0000_01b3);
        }
    };
    for e in events {
        eat(e.phase.ph().as_bytes());
        eat(&e.tid.to_le_bytes());
        eat(e.cat.as_bytes());
        eat(normalize(&e.name).as_bytes());
        eat(b"\n");
    }
    hash
}

/// The golden structure fingerprint of a serial figure-like sweep. If an
/// *intentional* instrumentation change trips this, rerun the test and
/// copy the `actual` value from the failure message.
const SERIAL_SPAN_TREE_FNV1A: u64 = 0x468C_08D3_1784_D67A;

#[test]
fn serial_sweep_span_tree_is_deterministic_and_golden() {
    let (first, second) = with_traced_sink(|| {
        figure_like_sweep().run_with_jobs(1);
        let first = span::snapshot_events();
        span::reset();
        prep_cache::clear();
        figure_like_sweep().run_with_jobs(1);
        let second = span::snapshot_events();
        (first, second)
    });

    assert!(!first.is_empty(), "a traced sweep records spans");
    assert_eq!(span::recorded(), 0, "sink resets after the gate");

    // Same structure run-to-run within the process...
    assert_eq!(structure_fingerprint(&first), structure_fingerprint(&second));
    // ...and everything runs on the orchestrator track when jobs = 1.
    assert!(first.iter().all(|e| e.tid == 0), "serial sweeps never claim worker tids");

    // The sweep span wraps everything; each task span nests the run
    // phases in submission order.
    assert_eq!(first[0].phase, SpanPhase::Begin);
    assert_eq!(first[0].cat, "sweep");
    assert_eq!(first.last().expect("nonempty").phase, SpanPhase::End);
    for phase_name in ["prep ", "allocate ", "warmup ", "measure "] {
        assert!(
            first.iter().any(|e| e.name.starts_with(phase_name)),
            "missing {phase_name:?} spans"
        );
    }

    let actual = structure_fingerprint(&first);
    assert_eq!(
        actual, SERIAL_SPAN_TREE_FNV1A,
        "serial span-tree structure changed: actual {actual:#018X} — if intentional, \
         update SERIAL_SPAN_TREE_FNV1A"
    );
}

#[test]
fn parallel_sweep_exports_well_formed_chrome_trace() {
    let trace = with_traced_sink(|| {
        figure_like_sweep().run_with_jobs(8);
        span::export_chrome_trace()
    });

    // Round-trip through the parser: the export must be valid JSON.
    let parsed = sipt_telemetry::json::parse(&trace.render_pretty()).expect("trace parses");
    let events = parsed.path("traceEvents").and_then(Json::as_arr).expect("traceEvents[]");
    assert_eq!(parsed.path("spanDropped").and_then(Json::as_f64), Some(0.0));

    let mut named_tids = std::collections::BTreeSet::new();
    let mut stacks: std::collections::BTreeMap<u64, Vec<String>> = Default::default();
    let mut worker_event_tids = std::collections::BTreeSet::new();
    for e in events {
        let ph = e.path("ph").and_then(Json::as_str).expect("ph");
        let tid = e.path("tid").and_then(Json::as_f64).expect("tid") as u64;
        let name = e.path("name").and_then(Json::as_str).expect("name").to_owned();
        assert_eq!(e.path("pid").and_then(Json::as_f64), Some(1.0), "single process");
        match ph {
            "M" => {
                if name == "thread_name" {
                    named_tids.insert(tid);
                }
            }
            "B" => stacks.entry(tid).or_default().push(name),
            "E" => {
                let open = stacks.entry(tid).or_default().pop();
                assert_eq!(open.as_deref(), Some(name.as_str()), "E pairs with innermost B");
            }
            "i" => {
                assert_eq!(e.path("s").and_then(Json::as_str), Some("t"), "thread-scoped");
            }
            other => panic!("unexpected phase {other:?}"),
        }
        if ph != "M" {
            assert!(e.path("ts").and_then(Json::as_f64).is_some(), "timestamped");
            if tid > 0 {
                worker_event_tids.insert(tid);
            }
        }
    }
    for (tid, stack) in &stacks {
        assert!(stack.is_empty(), "unclosed spans on tid {tid}: {stack:?}");
    }
    assert!(!worker_event_tids.is_empty(), "parallel sweep records on worker tracks");
    for tid in &worker_event_tids {
        assert!(named_tids.contains(tid), "worker tid {tid} must carry thread_name metadata");
    }
    // Worker track labels follow the `worker N` convention (tid = N + 1).
    let labels: Vec<&str> = events
        .iter()
        .filter(|e| e.path("name").and_then(Json::as_str) == Some("thread_name"))
        .filter(|e| e.path("tid").and_then(Json::as_f64) != Some(0.0))
        .filter_map(|e| e.path("args.name").and_then(Json::as_str))
        .collect();
    assert!(labels.iter().all(|l| l.starts_with("worker ")), "worker tracks labeled: {labels:?}");
}

#[test]
fn disabled_tracing_records_nothing_during_a_sweep() {
    let _g = GATE.lock().unwrap_or_else(PoisonError::into_inner);
    span::set_enabled(false);
    span::reset();
    let cond = Condition::quick();
    let mut sweep = Sweep::new();
    sweep.bench("sjeng", sipt_32k_2w(), SystemKind::OooThreeLevel, &cond);
    sweep.run_with_jobs(2);
    assert_eq!(span::recorded(), 0, "disabled tracing must stay silent");
    assert_eq!(span::dropped(), 0);
}
