//! Golden-fingerprint pin for the per-access kernel.
//!
//! The data-oriented hot path (packed SoA cache arrays, monomorphized
//! replacement, inlined TLB fast path) is a *wall-clock* optimization: it
//! must keep every simulated metric bit-identical. This test renders the
//! exact payload bytes of fig02 (ideal-config IPC sweep) and of a
//! bypass-predictor ablation at smoke scale, hashes them, and compares
//! against fingerprints recorded from the pre-rewrite pointer-chasing
//! kernel. A future kernel change that alters simulated behaviour — a
//! different victim, a different latency, a reordered RNG draw — fails
//! loudly here instead of silently shifting the science.
//!
//! If a change *intends* to alter simulated behaviour, regenerate the
//! constants below (the failure message prints the observed values) and
//! say so in the commit message.

use sipt_core::{sipt_32k_2w, BypassKind, L1Policy};
use sipt_sim::experiments::{ideal, report, smoke_benchmarks};
use sipt_sim::{
    prep_cache, run_mix, set_jobs, set_predictor_stage, set_replay_batch, set_tlb_batch, Condition,
    RunMetrics, Sweep, SystemKind, DEFAULT_REPLAY_BATCH,
};
use sipt_telemetry::json::Json;
use std::sync::{Mutex, PoisonError};

/// FNV-1a 64-bit, stable across platforms — the fingerprint function.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Serialize on one gate (jobs and the prep cache are process-wide) and
/// restore defaults afterwards, mirroring `prep_cache_determinism.rs`.
fn with_exclusive_state<R>(f: impl FnOnce() -> R) -> R {
    static GATE: Mutex<()> = Mutex::new(());
    let _gate = GATE.lock().unwrap_or_else(PoisonError::into_inner);
    prep_cache::clear();
    prep_cache::set_enabled(true);
    let out = f();
    prep_cache::clear();
    prep_cache::set_enabled(true);
    set_jobs(1);
    set_replay_batch(DEFAULT_REPLAY_BATCH);
    set_tlb_batch(true);
    set_predictor_stage(false);
    out
}

/// fig02's exact payload bytes at smoke scale.
fn fig02_payload() -> String {
    report::ideal_json(&ideal::fig2(&smoke_benchmarks(), &Condition::quick())).render()
}

/// Per-run summaries of the bypass-predictor ablation (perceptron vs
/// counter), with the host-time-dependent `phases` object masked.
fn ablation_payload() -> String {
    let cond = Condition::quick();
    let mut sweep = Sweep::new();
    for &bench in &smoke_benchmarks() {
        sweep.bench(
            bench,
            sipt_32k_2w().with_policy(L1Policy::SiptBypass),
            SystemKind::OooThreeLevel,
            &cond,
        );
        sweep.bench(
            bench,
            sipt_32k_2w().with_policy(L1Policy::SiptBypass).with_bypass(BypassKind::Counter),
            SystemKind::OooThreeLevel,
            &cond,
        );
    }
    sweep.run().metrics.iter().map(masked_report).collect::<Vec<_>>().join("\n")
}

fn masked_report(m: &RunMetrics) -> String {
    let mut json = report::run_summary_json(m);
    json.insert("phases", Json::str("masked"));
    json.render()
}

/// Golden fingerprints recorded from the pre-SoA kernel (PR 4 tree).
/// Simulated payloads must never drift from these without an explicit,
/// intentional re-pin.
const FIG02_GOLDEN_FNV1A: u64 = 0xF633_03AE_7922_41E7;
const ABLATION_GOLDEN_FNV1A: u64 = 0x1FC8_C2BB_ABEE_D104;

#[test]
fn fig02_payload_matches_golden_fingerprint() {
    with_exclusive_state(|| {
        set_jobs(1);
        let payload = fig02_payload();
        let got = fnv1a(payload.as_bytes());
        assert_eq!(
            got, FIG02_GOLDEN_FNV1A,
            "fig02 payload fingerprint drifted: observed {got:#018x} \
             (expected {FIG02_GOLDEN_FNV1A:#018x}). The kernel changed simulated \
             behaviour; payload was:\n{payload}"
        );
    });
}

#[test]
fn ablation_payload_matches_golden_fingerprint() {
    with_exclusive_state(|| {
        set_jobs(1);
        let payload = ablation_payload();
        let got = fnv1a(payload.as_bytes());
        assert_eq!(
            got, ABLATION_GOLDEN_FNV1A,
            "ablation payload fingerprint drifted: observed {got:#018x} \
             (expected {ABLATION_GOLDEN_FNV1A:#018x}). The kernel changed simulated \
             behaviour; payload was:\n{payload}"
        );
    });
}

/// The fingerprints must be jobs-independent: a parallel sweep replays the
/// same simulations in the same submission order.
#[test]
fn fig02_fingerprint_is_jobs_independent() {
    with_exclusive_state(|| {
        set_jobs(4);
        let got = fnv1a(fig02_payload().as_bytes());
        assert_eq!(got, FIG02_GOLDEN_FNV1A, "fig02 payload drifted under --jobs 4");
    });
}

/// The block-replay kernel's batch size shapes only *when* translations
/// are computed, never *what* they compute: every batch size, crossed
/// with serial and parallel sweeps, must reproduce the per-access
/// golden fingerprint byte for byte.
#[test]
fn fig02_fingerprint_is_batch_size_independent() {
    with_exclusive_state(|| {
        for batch in [1, 7, 256] {
            for jobs in [1, 8] {
                set_replay_batch(batch);
                set_jobs(jobs);
                let got = fnv1a(fig02_payload().as_bytes());
                assert_eq!(
                    got, FIG02_GOLDEN_FNV1A,
                    "fig02 payload drifted at replay batch {batch}, jobs {jobs}"
                );
            }
        }
    });
}

/// Guarded TLB batching (`SIPT_TLB_BATCH` / `--no-tlb-batch`) reorders
/// *when* the set-associative TLB is probed, never what it answers: with
/// batching disabled, every batch size must still reproduce the golden
/// fingerprint — the same bytes the batched path produces.
#[test]
fn fig02_fingerprint_is_tlb_batching_independent() {
    with_exclusive_state(|| {
        set_tlb_batch(false);
        for batch in [1, 7, 256] {
            set_replay_batch(batch);
            set_jobs(1);
            let got = fnv1a(fig02_payload().as_bytes());
            assert_eq!(
                got, FIG02_GOLDEN_FNV1A,
                "fig02 payload drifted with TLB batching disabled at replay batch {batch}"
            );
        }
    });
}

/// Block-staging the predictor front-end (`SIPT_PREDICTOR_STAGE` /
/// `set_predictor_stage`) moves *when* predictor rows are read — batched
/// ahead of the timing loop instead of inline — never what they answer:
/// with staging forced on, fig02 must reproduce the golden fingerprint
/// at every batch size × job count. (The ideal configs never stage, so
/// this also pins the knob as a no-op where staging is ineligible.)
#[test]
fn fig02_fingerprint_is_predictor_staging_independent() {
    with_exclusive_state(|| {
        set_predictor_stage(true);
        for batch in [1, 7, 256] {
            for jobs in [1, 8] {
                set_replay_batch(batch);
                set_jobs(jobs);
                let got = fnv1a(fig02_payload().as_bytes());
                assert_eq!(
                    got, FIG02_GOLDEN_FNV1A,
                    "fig02 payload drifted with predictor staging on at batch {batch}, jobs {jobs}"
                );
            }
        }
    });
}

/// The staging-on sweep that bites: the ablation payload's SiptBypass ×
/// perceptron runs are staging-eligible, so with the knob forced on the
/// replay loop actually routes through `stage_block` + staged
/// `combined_access` — and must still land on the golden bytes at every
/// batch size (including batch 1, where every window is a single access).
#[test]
fn ablation_fingerprint_is_predictor_staging_independent() {
    with_exclusive_state(|| {
        set_predictor_stage(true);
        for batch in [1, 7, 256] {
            set_replay_batch(batch);
            set_jobs(1);
            let got = fnv1a(ablation_payload().as_bytes());
            assert_eq!(
                got, ABLATION_GOLDEN_FNV1A,
                "ablation payload drifted with predictor staging on at batch {batch}"
            );
        }
    });
}

/// Same batch-size sweep over the ablation payload, which exercises the
/// bypass-predictor policies (SiptBypass × perceptron/counter) the fig02
/// ideal sweep does not.
#[test]
fn ablation_fingerprint_is_batch_size_independent() {
    with_exclusive_state(|| {
        for batch in [1, 7, 256] {
            set_replay_batch(batch);
            set_jobs(1);
            let got = fnv1a(ablation_payload().as_bytes());
            assert_eq!(
                got, ABLATION_GOLDEN_FNV1A,
                "ablation payload drifted at replay batch {batch}"
            );
        }
    });
}

/// Quad-core mix payload (per-core masked summaries) at quick scale.
fn mix_payload() -> String {
    let cond = Condition {
        memory_bytes: 4 << 30,
        instructions: 15_000,
        warmup: 5_000,
        ..Condition::default()
    };
    let m = run_mix("mix0", sipt_32k_2w(), &cond);
    m.cores.iter().map(masked_report).collect::<Vec<_>>().join("\n")
}

/// Golden fingerprint of the quad-core mix0 payload, recorded from the
/// serial (jobs = 1) core loop.
const MIX0_GOLDEN_FNV1A: u64 = 0xDA94_3467_A785_4105;

/// Intra-run core sharding (each core of a quad-core mix on its own
/// thread) must reproduce the serial golden fingerprint: private
/// hierarchies share no state, so the payload is bit-identical by
/// construction — and pinned here so it stays that way.
#[test]
fn quadcore_mix_fingerprint_is_sharding_independent() {
    with_exclusive_state(|| {
        set_jobs(1);
        let serial = mix_payload();
        let got = fnv1a(serial.as_bytes());
        assert_eq!(
            got, MIX0_GOLDEN_FNV1A,
            "serial mix0 payload fingerprint drifted: observed {got:#018x} \
             (expected {MIX0_GOLDEN_FNV1A:#018x}); payload was:\n{serial}"
        );
        set_jobs(8);
        let sharded = fnv1a(mix_payload().as_bytes());
        assert_eq!(sharded, MIX0_GOLDEN_FNV1A, "intra-run core sharding changed the mix0 payload");
    });
}

/// Span tracing (`--trace-spans` / `SIPT_TRACE_SPANS=1`) is host-side
/// observability only: with the sink armed, the simulated payload must
/// stay bit-identical to the golden fingerprint recorded with tracing
/// off.
#[test]
fn fig02_fingerprint_is_unchanged_by_span_tracing() {
    with_exclusive_state(|| {
        sipt_telemetry::span::reset();
        sipt_telemetry::span::set_enabled(true);
        set_jobs(2);
        let payload = fig02_payload();
        let spans = sipt_telemetry::span::recorded();
        sipt_telemetry::span::set_enabled(false);
        sipt_telemetry::span::reset();
        let got = fnv1a(payload.as_bytes());
        assert!(spans > 0, "tracing was armed, so the sweep must record spans");
        assert_eq!(
            got, FIG02_GOLDEN_FNV1A,
            "span tracing changed the fig02 payload — instrumentation must be \
             invisible to the simulation"
        );
    });
}
