//! The workload-preparation cache must be invisible in the results: a
//! cached run and a `SIPT_PREP_CACHE=0` run must produce byte-identical
//! report payloads, for any worker count, and resuming from a checkpoint
//! must not touch (or double-count) the prep cache at all. These tests
//! pin that contract for fig02 and the bypass-predictor ablation.
//!
//! The cache and the sweep job count are process-wide state, so every
//! test serializes on one gate and restores the defaults afterwards.

use sipt_core::{sipt_32k_2w, BypassKind, L1Policy};
use sipt_sim::experiments::{ideal, report, smoke_benchmarks};
use sipt_sim::{checkpoint, prep_cache, set_jobs, Condition, RunMetrics, Sweep, SystemKind};
use sipt_telemetry::json::Json;
use std::sync::{Mutex, PoisonError};

/// Serialize tests that flip process-wide knobs (cache enable, jobs,
/// checkpoint), with clean cache state on entry and defaults restored on
/// exit.
fn with_exclusive_state<R>(f: impl FnOnce() -> R) -> R {
    static GATE: Mutex<()> = Mutex::new(());
    let _gate = GATE.lock().unwrap_or_else(PoisonError::into_inner);
    checkpoint::clear();
    prep_cache::clear();
    prep_cache::set_enabled(true);
    let out = f();
    checkpoint::clear();
    prep_cache::clear();
    prep_cache::set_enabled(true);
    set_jobs(1);
    out
}

/// fig02's exact payload bytes at smoke scale (the figure drivers render
/// object keys in deterministic order, so equal strings mean equal
/// reports).
fn fig02_payload() -> String {
    report::ideal_json(&ideal::fig2(&smoke_benchmarks(), &Condition::quick())).render()
}

/// The bypass-predictor ablation's sweep (perceptron vs counter per
/// benchmark), rendered per-run with the host-time-dependent `phases`
/// object masked out.
fn ablation_payload() -> Vec<String> {
    let cond = Condition::quick();
    let mut sweep = Sweep::new();
    for &bench in &smoke_benchmarks() {
        sweep.bench(
            bench,
            sipt_32k_2w().with_policy(L1Policy::SiptBypass),
            SystemKind::OooThreeLevel,
            &cond,
        );
        sweep.bench(
            bench,
            sipt_32k_2w().with_policy(L1Policy::SiptBypass).with_bypass(BypassKind::Counter),
            SystemKind::OooThreeLevel,
            &cond,
        );
    }
    sweep.run().metrics.iter().map(masked_report).collect()
}

fn masked_report(m: &RunMetrics) -> String {
    let mut json = report::run_summary_json(m);
    json.insert("phases", Json::str("masked"));
    json.render()
}

#[test]
fn fig02_cached_vs_uncached_byte_identical_jobs_1() {
    with_exclusive_state(|| {
        set_jobs(1);
        let cached = fig02_payload();
        let stats = prep_cache::stats();
        assert!(stats.hits > 0, "5 extra configs per benchmark must hit, got {stats:?}");
        assert_eq!(
            stats.misses,
            smoke_benchmarks().len() as u64,
            "one preparation per distinct benchmark"
        );

        prep_cache::set_enabled(false);
        let uncached = fig02_payload();
        let after = prep_cache::stats();
        assert_eq!(
            (after.hits, after.misses),
            (stats.hits, stats.misses),
            "disabled counts nothing"
        );

        assert_eq!(cached, uncached, "fig02 payload must not depend on the prep cache");
    });
}

#[test]
fn fig02_cached_vs_uncached_byte_identical_jobs_8() {
    with_exclusive_state(|| {
        set_jobs(8);
        let cached = fig02_payload();
        prep_cache::set_enabled(false);
        let uncached = fig02_payload();
        assert_eq!(cached, uncached, "fig02 payload must not depend on the prep cache at jobs 8");
    });
}

#[test]
fn fig02_cache_counters_independent_of_job_count() {
    with_exclusive_state(|| {
        set_jobs(1);
        let _ = fig02_payload();
        let serial = prep_cache::stats();
        prep_cache::clear();
        set_jobs(8);
        let _ = fig02_payload();
        let parallel = prep_cache::stats();
        assert_eq!(
            (serial.hits, serial.misses),
            (parallel.hits, parallel.misses),
            "hit/miss accounting must be deterministic across worker counts"
        );
    });
}

#[test]
fn ablation_cached_vs_uncached_byte_identical_both_job_counts() {
    with_exclusive_state(|| {
        for jobs in [1usize, 8] {
            set_jobs(jobs);
            prep_cache::clear();
            prep_cache::set_enabled(true);
            let cached = ablation_payload();
            prep_cache::set_enabled(false);
            let uncached = ablation_payload();
            assert_eq!(
                cached, uncached,
                "ablation payload must not depend on the prep cache at jobs {jobs}"
            );
        }
    });
}

/// Resume-with-cache interaction: a resumed sweep restores completed
/// tasks from the checkpoint *without* executing them, so it must not
/// perform any prep-cache lookups — checkpoint hits and cache hits are
/// disjoint counters and must never double-count.
#[test]
fn resume_restores_without_touching_the_prep_cache() {
    with_exclusive_state(|| {
        set_jobs(2);
        let dir = std::env::temp_dir()
            .join(format!("sipt-prep-cache-determinism-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("fig02.checkpoint.json");

        // First run: records every completed task to the checkpoint.
        let ckpt = checkpoint::configure(&path, true).expect("arm checkpoint");
        assert_eq!(ckpt.restored_len(), 0, "fresh checkpoint restores nothing");
        let first = fig02_payload();
        let after_first = prep_cache::stats();
        assert!(after_first.misses > 0, "first run must prepare workloads");

        // Second run, resuming: every task restores from the checkpoint,
        // so the prep cache must see zero additional lookups.
        checkpoint::clear();
        let ckpt = checkpoint::configure(&path, true).expect("re-arm checkpoint");
        assert!(ckpt.restored_len() > 0, "checkpoint must have recorded the first run");
        let resumed = fig02_payload();
        let after_resume = prep_cache::stats();

        assert_eq!(first, resumed, "resumed payload must be byte-identical");
        assert_eq!(
            (after_resume.hits, after_resume.misses),
            (after_first.hits, after_first.misses),
            "restored tasks must not touch the prep cache (no double-counting)"
        );

        checkpoint::clear();
        let _ = std::fs::remove_dir_all(&dir);
    });
}
