//! Reproducibility: every layer is seeded, so identical conditions must
//! produce bit-identical results — the property that makes the paper's
//! per-figure numbers regenerable.

use sipt_core::{sipt_32k_2w, sipt_64k_4w};
use sipt_sim::{run_benchmark, run_mix, speculation_profile, Condition, SystemKind};

fn cond() -> Condition {
    Condition { instructions: 12_000, warmup: 3_000, ..Condition::default() }
}

#[test]
fn single_core_runs_are_bit_identical() {
    let a = run_benchmark("calculix", sipt_32k_2w(), SystemKind::OooThreeLevel, &cond());
    let b = run_benchmark("calculix", sipt_32k_2w(), SystemKind::OooThreeLevel, &cond());
    assert_eq!(a.core, b.core);
    assert_eq!(a.sipt, b.sipt);
    assert_eq!(a.tlb, b.tlb);
    assert_eq!(a.llc, b.llc);
    assert_eq!(a.dram, b.dram);
    assert_eq!(a.energy, b.energy);
}

#[test]
fn different_seeds_differ() {
    let c1 = cond();
    let c2 = Condition { seed: 1234, ..c1 };
    let a = run_benchmark("calculix", sipt_32k_2w(), SystemKind::OooThreeLevel, &c1);
    let b = run_benchmark("calculix", sipt_32k_2w(), SystemKind::OooThreeLevel, &c2);
    assert_ne!(a.core.cycles, b.core.cycles, "seed must actually steer the run");
}

#[test]
fn profiles_are_deterministic() {
    let a = speculation_profile("graph500", &cond());
    let b = speculation_profile("graph500", &cond());
    assert_eq!(a, b);
}

#[test]
fn mix_runs_are_deterministic() {
    let c = Condition { memory_bytes: 4 << 30, ..cond() };
    let a = run_mix("mix3", sipt_64k_4w(), &c);
    let b = run_mix("mix3", sipt_64k_4w(), &c);
    assert_eq!(a.sum_ipc(), b.sum_ipc());
    for (x, y) in a.cores.iter().zip(&b.cores) {
        assert_eq!(x.sipt, y.sipt);
    }
}

#[test]
fn fragmented_runs_are_deterministic() {
    let c = Condition { fragmented: true, memory_bytes: 2 << 30, ..cond() };
    let a = run_benchmark("bwaves", sipt_32k_2w(), SystemKind::OooThreeLevel, &c);
    let b = run_benchmark("bwaves", sipt_32k_2w(), SystemKind::OooThreeLevel, &c);
    assert_eq!(a.sipt, b.sipt);
    assert_eq!(a.core.cycles, b.core.cycles);
}
