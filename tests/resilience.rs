//! Integration tests for the resilience layer: panic isolation on the
//! sweep pool, the watchdog, checkpoint/resume bit-exactness, and the
//! typed error surface on untrusted-input paths.
//!
//! Several of these tests mutate process-wide state (the watchdog
//! timeout, the active checkpoint), so they serialize on one lock.

use sipt_core::{baseline_32k_8w_vipt, sipt_32k_2w};
use sipt_sim::sweep::Sweep;
use sipt_sim::{checkpoint, resilience};
use sipt_sim::{run_benchmark, Condition, PoolTask, SimError, SystemKind};
use std::sync::{Mutex, MutexGuard, OnceLock};

fn global_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(())).lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// The tentpole guarantee: a panic in task k of n is captured as a
/// structured failure while every other task completes with metrics
/// bit-identical to a clean direct run.
#[test]
fn panic_in_one_task_leaves_survivors_bit_identical() {
    let _g = global_lock();
    let cond = Condition::quick();
    let names = ["sjeng", "mcf", "libquantum", "calculix"];
    let k = 2; // libquantum's slot panics
    let base = resilience::allocate_task_ids(names.len());
    let tasks: Vec<PoolTask<_>> = names
        .iter()
        .enumerate()
        .map(|(i, name)| PoolTask {
            id: base + i,
            label: (*name).to_owned(),
            task: move |_worker: usize| {
                if i == k {
                    panic!("injected corruption in {name}");
                }
                run_benchmark(name, sipt_32k_2w(), SystemKind::OooThreeLevel, &cond)
            },
        })
        .collect();
    let (outcomes, profile) = sipt_sim::run_parallel_isolated(tasks, 2, 1);
    assert_eq!(profile.tasks, names.len());
    for (i, name) in names.iter().enumerate() {
        if i == k {
            let failure = outcomes[i].as_ref().expect_err("task k must fail");
            assert_eq!(failure.task, base + k);
            assert_eq!(failure.label, *name);
            assert_eq!(failure.attempts, 1);
            assert!(failure.panic_msg.contains("injected corruption"));
        } else {
            let m = outcomes[i].as_ref().expect("survivor completes");
            let direct = run_benchmark(name, sipt_32k_2w(), SystemKind::OooThreeLevel, &cond);
            assert_eq!(m.core, direct.core, "{name}: core counters must be bit-identical");
            assert_eq!(m.sipt, direct.sipt, "{name}: L1 stats must be bit-identical");
            assert_eq!(m.energy, direct.energy, "{name}: energy must be bit-identical");
        }
    }
}

/// The watchdog flags (but does not kill, by default) a task exceeding
/// the configured `--task-timeout`.
#[test]
fn watchdog_flags_overrunning_tasks() {
    let _g = global_lock();
    resilience::set_task_timeout_ms(30);
    let base = resilience::allocate_task_ids(1);
    let tasks = vec![PoolTask {
        id: base,
        label: "sleeper".to_owned(),
        task: move |_worker: usize| {
            std::thread::sleep(std::time::Duration::from_millis(150));
            7u8
        },
    }];
    let (outcomes, _) = sipt_sim::run_parallel_isolated(tasks, 1, 1);
    resilience::set_task_timeout_ms(0); // watchdog off again
    assert_eq!(*outcomes[0].as_ref().expect("slow is not failed"), 7);
    let flags = resilience::watchdog_flags();
    let flag = flags.iter().find(|f| f.task == base).expect("the overrunning task must be flagged");
    assert_eq!(flag.timeout_ms, 30);
    assert!(flag.elapsed_ms > 30.0, "flag fired at {} ms", flag.elapsed_ms);
}

/// Checkpoint/resume: a sweep whose tasks were persisted restores them
/// bit-exactly (byte-identical metric encodings) instead of re-running.
#[test]
fn checkpoint_resume_restores_bit_exactly() {
    let _g = global_lock();
    let dir = std::env::temp_dir().join(format!("sipt-resilience-ckpt-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let path = dir.join("sweep.checkpoint.json");
    let cond = Condition::quick();
    let build = || {
        let mut sweep = Sweep::new();
        for name in ["sjeng", "mcf"] {
            sweep.bench(name, baseline_32k_8w_vipt(), SystemKind::OooThreeLevel, &cond);
            sweep.bench(name, sipt_32k_2w(), SystemKind::OooThreeLevel, &cond);
        }
        sweep
    };

    // First run: fresh checkpoint, everything simulated and persisted.
    checkpoint::configure(&path, false).expect("fresh checkpoint");
    let first = build().run_with_jobs(2);
    checkpoint::clear();
    assert!(first.failures.is_empty());
    assert_eq!(first.metrics.len(), 4);

    // Second run: resume. All four tasks restore from disk (matched by
    // content fingerprint), so nothing is simulated and the metrics are
    // byte-identical under the bit-exact codec.
    let handle = checkpoint::configure(&path, true).expect("resume");
    assert_eq!(handle.restored_len(), 4, "all four tasks on file");
    let second = build().run_with_jobs(2);
    checkpoint::clear();
    let _ = std::fs::remove_dir_all(&dir);

    assert!(second.failures.is_empty());
    assert_eq!(second.profile.tasks, 0, "resume must skip all simulation");
    for (i, (a, b)) in first.metrics.iter().zip(&second.metrics).enumerate() {
        assert_eq!(
            checkpoint::encode_metrics(a),
            checkpoint::encode_metrics(b),
            "slot {i}: resumed metrics must be bit-identical"
        );
    }
}

/// Untrusted-input paths return typed [`SimError`]s instead of panicking.
#[test]
fn typed_errors_replace_panics_on_untrusted_input() {
    let cond = Condition::quick();
    let err = sipt_sim::try_run_benchmark(
        "no-such-bench",
        baseline_32k_8w_vipt(),
        SystemKind::OooThreeLevel,
        &cond,
    )
    .expect_err("unknown benchmark");
    assert!(matches!(err, SimError::UnknownBenchmark { .. }));
    assert!(err.to_string().contains("no-such-bench"));

    // A 4 KiB machine cannot hold any benchmark's working set: the buddy
    // allocator's typed OOM propagates as WorkloadTooLarge, not a panic.
    let tiny = Condition { memory_bytes: 1 << 12, ..Condition::quick() };
    let err = sipt_sim::try_run_benchmark(
        "mcf",
        baseline_32k_8w_vipt(),
        SystemKind::OooThreeLevel,
        &tiny,
    )
    .expect_err("4 KiB of memory cannot fit mcf");
    assert!(matches!(err, SimError::WorkloadTooLarge { .. } | SimError::Mem(_)), "got {err}");

    // Invalid L1 configuration (zero latency) is a Config error.
    let mut bad = baseline_32k_8w_vipt();
    bad.latency = 0;
    let err = sipt_sim::try_run_benchmark("mcf", bad, SystemKind::OooThreeLevel, &cond)
        .expect_err("zero-latency L1 is invalid");
    assert!(matches!(err, SimError::Config { .. }), "got {err}");
}
