//! Subprocess proof that the `SIPT_PREDICTOR_STAGE` opt-in is
//! payload-invariant.
//!
//! The in-process golden tests (`kernel_bit_identity.rs`) flip the knob
//! through [`sipt_sim::set_predictor_stage`]; this test exercises the
//! *other* half of the contract — the environment parse a measurement
//! session would actually use — by re-executing this test binary as a
//! worker with the variable set. The worker computes the bypass-ablation
//! payload (its SiptBypass × perceptron runs are the staging-eligible
//! ones, so the staged front-end genuinely runs when the knob is on) and
//! prints its fingerprint; every mode must agree with the committed
//! golden, byte for byte. Staging defaults *off* — `=1` opts in, `=0`
//! forces off — and the mode line pins that polarity too.

use sipt_core::{sipt_32k_2w, BypassKind, L1Policy};
use sipt_sim::experiments::report;
use sipt_sim::{predictor_stage_enabled, set_jobs, Condition, Sweep, SystemKind};
use sipt_telemetry::json::Json;
use std::process::Command;

/// FNV-1a 64-bit — same fingerprint function as `kernel_bit_identity.rs`.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Ablation golden fingerprint, mirrored from `kernel_bit_identity.rs`
/// (the constants are re-pinned together when behaviour intentionally
/// changes).
const ABLATION_GOLDEN_FNV1A: u64 = 0x1FC8_C2BB_ABEE_D104;

/// The bypass-predictor ablation payload at smoke scale — the same
/// construction as `kernel_bit_identity.rs::ablation_payload`, with the
/// host-time-dependent `phases` object masked.
fn ablation_payload() -> String {
    let cond = Condition::quick();
    let mut sweep = Sweep::new();
    for &bench in &sipt_sim::experiments::smoke_benchmarks() {
        sweep.bench(
            bench,
            sipt_32k_2w().with_policy(L1Policy::SiptBypass),
            SystemKind::OooThreeLevel,
            &cond,
        );
        sweep.bench(
            bench,
            sipt_32k_2w().with_policy(L1Policy::SiptBypass).with_bypass(BypassKind::Counter),
            SystemKind::OooThreeLevel,
            &cond,
        );
    }
    sweep
        .run()
        .metrics
        .iter()
        .map(|m| {
            let mut json = report::run_summary_json(m);
            json.insert("phases", Json::str("masked"));
            json.render()
        })
        .collect::<Vec<_>>()
        .join("\n")
}

/// Worker half: inert in a normal test run; under
/// `SIPT_PREDICTOR_STAGE_WORKER` it computes the serial ablation payload
/// in a fresh process (so the environment parse, not the programmatic
/// override, decides the mode) and prints marker lines for the parent.
#[test]
fn predictor_stage_payload_worker() {
    if std::env::var("SIPT_PREDICTOR_STAGE_WORKER").is_err() {
        return;
    }
    set_jobs(1);
    let payload = ablation_payload();
    println!("PREDICTOR_STAGE_MODE={}", u8::from(predictor_stage_enabled()));
    println!("PAYLOAD_FNV={:#018x}", fnv1a(payload.as_bytes()));
}

/// Re-exec the worker with the knob unset, opted in (`=1`), and forced
/// off (`=0`), and require byte-identical payloads that match the
/// committed golden in every mode.
#[test]
fn env_opt_in_stages_without_changing_payload_bytes() {
    let exe = std::env::current_exe().expect("test binary path");
    let run = |stage_env: Option<&str>| -> (bool, u64) {
        let mut cmd = Command::new(&exe);
        cmd.args(["predictor_stage_payload_worker", "--exact", "--nocapture"])
            .env("SIPT_PREDICTOR_STAGE_WORKER", "1");
        if let Some(v) = stage_env {
            cmd.env("SIPT_PREDICTOR_STAGE", v);
        } else {
            cmd.env_remove("SIPT_PREDICTOR_STAGE");
        }
        let out = cmd.output().expect("spawn worker");
        let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
        assert!(
            out.status.success(),
            "worker failed (SIPT_PREDICTOR_STAGE={stage_env:?}):\n{stdout}\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
        // The libtest harness may glue its "test ... " progress prefix
        // onto the worker's first line, so match the key mid-line.
        let find = |key: &str| {
            stdout
                .lines()
                .find_map(|l| l.split(key).nth(1))
                .unwrap_or_else(|| panic!("worker printed no {key} line:\n{stdout}"))
                .trim()
                .to_owned()
        };
        let mode = find("PREDICTOR_STAGE_MODE=") == "1";
        let fnv_hex = find("PAYLOAD_FNV=");
        let fnv = u64::from_str_radix(fnv_hex.trim_start_matches("0x"), 16)
            .unwrap_or_else(|e| panic!("bad PAYLOAD_FNV {fnv_hex:?}: {e}"));
        (mode, fnv)
    };

    let (default_mode, default_fnv) = run(None);
    let (on_mode, on_fnv) = run(Some("1"));
    let (off_mode, off_fnv) = run(Some("0"));
    assert!(!default_mode, "staging must default off in a fresh process");
    assert!(on_mode, "SIPT_PREDICTOR_STAGE=1 must enable staging");
    assert!(!off_mode, "SIPT_PREDICTOR_STAGE=0 must force staging off");
    assert_eq!(default_fnv, on_fnv, "opting into predictor staging changed the payload bytes");
    assert_eq!(default_fnv, off_fnv, "SIPT_PREDICTOR_STAGE=0 changed the payload bytes");
    assert_eq!(
        default_fnv, ABLATION_GOLDEN_FNV1A,
        "ablation payload drifted from the committed golden"
    );
}
